"""Unified telemetry spine: one structured event stream, policy to CLI.

Layers emit typed events (:mod:`repro.telemetry.events`) onto per-process
:class:`~repro.telemetry.bus.EventBus` instances; sinks
(:mod:`repro.telemetry.sinks`) aggregate, ring-buffer, or serialize the
stream; a :class:`~repro.telemetry.session.TelemetrySession` exports whole
runs — including ``run_many`` fork-pool fan-outs — as newline-delimited JSON
that :mod:`repro.telemetry.summary` (and the ``repro trace`` CLI) can filter
and re-aggregate offline.

For fleet-scale runs two streaming sinks keep the bus from being bounded by
ring memory or flat files: :class:`~repro.telemetry.stats.StatsSink` (live
rolling per-``(server, policy)`` counters with periodic flush snapshots) and
:class:`~repro.telemetry.sqlite.SqliteSink` (batched inserts into SQLite
databases, per-worker spills merged in spec order, readable by every offline
consumer via :func:`~repro.telemetry.sqlite.iter_sqlite_records`).
"""

from repro.telemetry.bus import EventBus
from repro.telemetry.events import (
    EVENT_TYPES,
    AllocFree,
    Discard,
    FaultInjected,
    InvalidAccess,
    Manufacture,
    Redirect,
    RequestEnd,
    RequestQuarantined,
    RequestStart,
    RollbackPerformed,
    ScenarioEnd,
    ScenarioStart,
    SnapshotTaken,
    event_name,
    expand_invalid_accesses,
    from_record,
    to_record,
)
from repro.telemetry.session import TelemetrySession, current_session
from repro.telemetry.sinks import (
    CoalescingRingSink,
    CounterSink,
    JsonlSink,
    ListSink,
    Sink,
)
from repro.telemetry.sqlite import (
    SqliteSink,
    is_sqlite_file,
    iter_sqlite_records,
    merge_sqlite,
)
from repro.telemetry.stats import StatsSink, StatsView
from repro.telemetry.summary import (
    TraceSummary,
    filter_records,
    iter_records,
    iter_trace_records,
    request_traces,
    summarize_jsonl,
    summarize_records,
    summarize_trace,
)

__all__ = [
    "EventBus",
    "EVENT_TYPES",
    "AllocFree",
    "Discard",
    "InvalidAccess",
    "Manufacture",
    "Redirect",
    "FaultInjected",
    "RequestEnd",
    "RequestQuarantined",
    "RequestStart",
    "RollbackPerformed",
    "ScenarioEnd",
    "ScenarioStart",
    "SnapshotTaken",
    "event_name",
    "expand_invalid_accesses",
    "from_record",
    "to_record",
    "TelemetrySession",
    "current_session",
    "Sink",
    "ListSink",
    "CounterSink",
    "CoalescingRingSink",
    "JsonlSink",
    "SqliteSink",
    "is_sqlite_file",
    "iter_sqlite_records",
    "merge_sqlite",
    "StatsSink",
    "StatsView",
    "TraceSummary",
    "filter_records",
    "iter_records",
    "iter_trace_records",
    "request_traces",
    "summarize_jsonl",
    "summarize_records",
    "summarize_trace",
]
