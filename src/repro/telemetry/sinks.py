"""Pluggable sinks: where the event stream goes.

A sink is anything with an ``emit(event)`` method.  The substrate attaches a
:class:`CoalescingRingSink` and a :class:`CounterSink` to every policy's bus
(that pair is what the :class:`~repro.core.errorlog.MemoryErrorLog` façade
reads), experiments attach their own aggregators, and exports attach a
:class:`JsonlSink` — all without the emitters knowing or caring.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from dataclasses import replace
from typing import Deque, IO, Iterable, List, Optional, Tuple

from repro.errors import MemoryErrorEvent
from repro.telemetry.events import (
    AllocFree,
    Discard,
    InvalidAccess,
    Manufacture,
    Redirect,
    RequestEnd,
    to_record,
)


class Sink:
    """Interface marker: a sink consumes events via :meth:`emit`."""

    def emit(self, event: object) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class ListSink(Sink):
    """Capture events verbatim, optionally restricted to some types.

    The general-purpose short-lived recorder; consumers needing indexed
    views write their own small sinks instead (e.g. the propagation
    analysis's ``TraceRecorder``).
    """

    def __init__(self, event_types: Optional[Tuple[type, ...]] = None) -> None:
        self.event_types = event_types
        self.events: List[object] = []

    def emit(self, event: object) -> None:
        if self.event_types is None or isinstance(event, self.event_types):
            self.events.append(event)

    def clear(self) -> None:
        """Drop everything captured so far."""
        self.events.clear()


class CounterSink(Sink):
    """Aggregate counters over the stream: cheap, unbounded-safe observability.

    The invalid-access counters replicate what the §3 error log aggregates
    (totals, by site, by kind, by access direction); the continuation and
    request counters extend the same treatment to the rest of the stream.

    Run-carrying records weigh in at their ``count`` (see
    :mod:`repro.telemetry.events`): a batched flood of 4096 per-byte invalid
    writes adds 4096 to ``invalid_total`` and to ``by_type`` whether it
    arrived as one run record or 4096 singles — every aggregate here is
    stream-shape independent.
    """

    def __init__(self) -> None:
        self._reset_fields()

    def _reset_fields(self) -> None:
        self.by_type: Counter = Counter()
        self.invalid_total = 0
        self.invalid_by_site: Counter = Counter()
        self.invalid_by_kind: Counter = Counter()
        self.invalid_by_access: Counter = Counter()
        self.manufactured_bytes = 0
        self.discarded_bytes = 0
        self.stored_bytes = 0
        self.redirected_accesses = 0
        self.allocations = 0
        self.frees = 0
        self.requests_by_outcome: Counter = Counter()

    def emit(self, event: object) -> None:
        count = getattr(event, "count", 1)
        self.by_type[type(event).__name__] += count
        if isinstance(event, InvalidAccess):
            error = event.error
            self.invalid_total += count
            self.invalid_by_site[error.site] += count
            self.invalid_by_kind[error.kind] += count
            self.invalid_by_access[error.access] += count
        elif isinstance(event, Manufacture):
            self.manufactured_bytes += event.length
        elif isinstance(event, Discard):
            if event.stored:
                self.stored_bytes += event.length
            else:
                self.discarded_bytes += event.length
        elif isinstance(event, Redirect):
            self.redirected_accesses += count
        elif isinstance(event, AllocFree):
            if event.op == "free":
                self.frees += 1
            else:
                self.allocations += 1
        elif isinstance(event, RequestEnd):
            self.requests_by_outcome[event.outcome] += 1

    def clear(self) -> None:
        """Zero every counter.

        An explicit field reset, NOT ``self.__init__()``: subclasses with
        richer ``__init__`` signatures (or state established outside it)
        would otherwise be silently corrupted by
        :meth:`~repro.core.errorlog.MemoryErrorLog.clear`.
        """
        self._reset_fields()

    #: The aggregate fields snapshotted by checkpoint/restore — the same set
    #: _reset_fields initializes, kept explicit so subclass extras are not
    #: silently captured (subclasses override the pair if they need more).
    _CHECKPOINT_FIELDS = (
        "by_type", "invalid_total", "invalid_by_site", "invalid_by_kind",
        "invalid_by_access", "manufactured_bytes", "discarded_bytes",
        "stored_bytes", "redirected_accesses", "allocations", "frees",
        "requests_by_outcome",
    )

    def checkpoint(self) -> dict:
        """Snapshot every aggregate (Counters are copied, scalars as-is)."""
        cp = {}
        for name in self._CHECKPOINT_FIELDS:
            value = getattr(self, name)
            cp[name] = Counter(value) if isinstance(value, Counter) else value
        return cp

    def restore(self, cp: dict) -> None:
        """Reset the aggregates to a snapshot taken by :meth:`checkpoint`."""
        for name in self._CHECKPOINT_FIELDS:
            value = cp[name]
            setattr(self, name, Counter(value) if isinstance(value, Counter) else value)

    def __eq__(self, other: object) -> bool:
        """Value equality: two counter sinks with identical tallies are equal.

        Used by the offline summary equality checks; the bus attaches sinks
        by identity, so equal-but-distinct counters can share a bus.
        """
        return isinstance(other, CounterSink) and self.__dict__ == other.__dict__

    __hash__ = None  # mutable aggregate; unhashable like a dict


class CoalescingRingSink(Sink):
    """Bounded in-memory ring of invalid-access events, stored as runs.

    Attack floods hitting the per-byte out-of-bounds fallback emit one event
    per byte, identical except for a constant offset stride.  Storing each
    would allocate one object per flood byte (the ROADMAP's named cost
    ceiling), so consecutive events that differ only by a constant offset
    stride are coalesced into one ``(first_event, stride, count)`` run;
    :meth:`events` expands runs back into the exact original event sequence,
    so queries are bit-identical to an uncoalesced log.

    Eviction is O(1) per event: the oldest run is shrunk from its front (or
    popped once empty), preserving "drop the oldest single event" semantics.
    """

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        #: Runs are mutable lists ``[first_event, stride, start, count]``: the
        #: retained events are ``first_event.offset + stride * i`` for ``i``
        #: in ``[start, start + count)`` (``start`` > 0 after partial eviction).
        self._runs: Deque[list] = deque()
        self._retained = 0
        self._dropped = 0

    def emit(self, event: object) -> None:
        if isinstance(event, InvalidAccess):
            if event.count > 1:
                self.append_run(event.error, event.stride, event.count)
            else:
                self.append(event.error)

    # -- recording ---------------------------------------------------------------

    def append(self, error: MemoryErrorEvent) -> None:
        """Record one event, extending the newest run when it continues it."""
        if self._runs and self._extends_last(error):
            self._runs[-1][3] += 1
        else:
            self._runs.append([error, 0, 0, 1])
        self._note_appended(1)

    def append_run(self, error: MemoryErrorEvent, stride: int, count: int) -> None:
        """Record a whole run at once: ``count`` events stepping by ``stride``.

        This is the batched-continuation ingest path: the run is stored
        directly (no per-event work), and :meth:`events` remains identical to
        appending the expanded events one at a time.  A run continuing the
        newest stored run (same fields, same effective stride, contiguous
        offsets — consecutive chunks of one flood) extends it in place.
        """
        if count <= 0:
            return
        if count == 1:
            self.append(error)
            return
        if self._runs and self._fields_match(error):
            last = self._runs[-1]
            _first, last_stride, start, last_count = last[0], last[1], last[2], last[3]
            next_offset = last[0].offset + last_stride * (start + last_count)
            if last_count == 1 and start == 0:
                # A single stored event has no stride yet; adopt the run's if
                # the incoming offsets continue from it.
                if error.offset == last[0].offset + stride:
                    last[1] = stride
                    last[3] += count
                    self._note_appended(count)
                    return
            elif stride == last_stride and error.offset == next_offset:
                last[3] += count
                self._note_appended(count)
                return
        self._runs.append([error, stride, 0, count])
        self._note_appended(count)

    def _note_appended(self, count: int) -> None:
        self._retained += count
        if self._retained > self.capacity:
            self._evict(self._retained - self.capacity)

    def _fields_match(self, error: MemoryErrorEvent) -> bool:
        first = self._runs[-1][0]
        return not (
            error.kind is not first.kind
            or error.access is not first.access
            or error.unit_name != first.unit_name
            or error.unit_size != first.unit_size
            or error.length != first.length
            or error.site != first.site
            or error.request_id != first.request_id
        )

    def _extends_last(self, error: MemoryErrorEvent) -> bool:
        first, stride, start, count = self._runs[-1]
        if not self._fields_match(error):
            return False
        if count == 1 and start == 0:
            # Second event fixes the run's stride (commonly 1 for per-byte
            # floods, 0 for a loop re-touching the same byte).
            self._runs[-1][1] = error.offset - first.offset
            return True
        return error.offset == first.offset + stride * (start + count)

    def _evict(self, n: int) -> None:
        """Evict the ``n`` oldest events, shrinking whole runs at a time.

        O(runs touched), not O(events evicted): a flood run bigger than the
        ring is absorbed by advancing the front run's start once.
        """
        while n > 0:
            run = self._runs[0]
            take = run[3] if run[3] < n else n
            run[2] += take
            run[3] -= take
            if run[3] == 0:
                self._runs.popleft()
            self._retained -= take
            self._dropped += take
            n -= take

    def clear(self) -> None:
        """Discard all retained events and reset the eviction counter."""
        self._runs.clear()
        self._retained = 0
        self._dropped = 0

    def checkpoint(self) -> tuple:
        """Snapshot the retained runs (events are frozen, so runs are shared)."""
        return (tuple(tuple(run) for run in self._runs), self._retained, self._dropped)

    def restore(self, cp: tuple) -> None:
        """Reset the ring to a snapshot taken by :meth:`checkpoint`."""
        runs, retained, dropped = cp
        self._runs = deque(list(run) for run in runs)
        self._retained = retained
        self._dropped = dropped

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return self._retained

    @property
    def dropped(self) -> int:
        """Events evicted because the ring was full."""
        return self._dropped

    @property
    def run_count(self) -> int:
        """Number of stored runs (the actual memory footprint)."""
        return len(self._runs)

    @staticmethod
    def _expand(run: list) -> Iterable[MemoryErrorEvent]:
        first, stride, start, count = run
        for i in range(start, start + count):
            if i == 0:
                yield first
            else:
                yield replace(first, offset=first.offset + stride * i)

    def events(self) -> List[MemoryErrorEvent]:
        """Return the retained events, oldest first, expanded from their runs."""
        result: List[MemoryErrorEvent] = []
        for run in self._runs:
            result.extend(self._expand(run))
        return result

    def tail(self, n: int) -> List[MemoryErrorEvent]:
        """Return the newest ``n`` retained events (all of them if ``n`` is larger).

        Walks runs from the right, so the cost is O(n), not O(capacity) — this
        is what keeps per-request error attribution cheap on servers whose log
        holds thousands of older events.
        """
        if n <= 0:
            return []
        picked: List[list] = []
        remaining = n
        for run in reversed(self._runs):
            first, stride, start, count = run
            if count <= remaining:
                picked.append(run)
                remaining -= count
            else:
                picked.append([first, stride, start + count - remaining, remaining])
                remaining = 0
            if remaining == 0:
                break
        result: List[MemoryErrorEvent] = []
        for run in reversed(picked):
            result.extend(self._expand(run))
        return result


class JsonlSink(Sink):
    """Serialize every event as one JSON line to a file object."""

    def __init__(self, stream: IO[str]) -> None:
        self.stream = stream
        self.written = 0

    def emit(self, event: object) -> None:
        self.stream.write(json.dumps(to_record(event)) + "\n")
        self.written += 1


__all__ = [
    "Sink",
    "ListSink",
    "CounterSink",
    "CoalescingRingSink",
    "JsonlSink",
]
