"""Typed telemetry events: the vocabulary of the unified event stream.

The paper's §3 error log records *attempted memory errors*; this module widens
that record into a structured stream covering the whole request lifecycle, so
that forensics ("which attack caused which anticipated error?"), per-site
heatmaps, and soak-run dashboards are queries over one stream instead of
ad-hoc bookkeeping in each harness layer:

* :class:`InvalidAccess` — one attempted invalid access (wraps the paper's
  :class:`~repro.errors.MemoryErrorEvent`), emitted by every checking policy.
* :class:`Discard` / :class:`Manufacture` / :class:`Redirect` — the
  continuation the policy executed for the access (failure-oblivious writes,
  manufactured reads, §5.1 redirects).

Run-carrying events
-------------------
The batched out-of-bounds continuation (PR 4) classifies a whole contiguous
invalid run once instead of once per byte.  So that the event stream loses no
information, the access-level events carry the run explicitly:

* :class:`InvalidAccess` has ``count``/``stride``: the record stands for
  ``count`` per-byte error events whose offsets are ``error.offset + stride*i``
  (``count == 1`` is the ordinary single event).  :meth:`InvalidAccess.expand`
  reproduces the exact per-byte event sequence.
* :class:`Discard` / :class:`Manufacture` / :class:`Redirect` have ``count``:
  how many per-byte continuation decisions the record batches.  A block access
  (one decision covering ``length`` bytes, the pre-PR-4 behaviour) has
  ``count == 1``; a batched per-byte run has ``count == length``.

Aggregate consumers (:class:`~repro.telemetry.sinks.CounterSink`, trace
summaries) weight by these fields, which is what keeps every error-log and
trace-summary query bit-identical whether a flood was recorded per byte or
as runs.
* :class:`AllocFree` — heap allocator activity, for leak/heap forensics.
* :class:`RequestStart` / :class:`RequestEnd` — the server request lifecycle;
  the ``request_id`` is the trace id correlating everything in between.
* :class:`ScenarioStart` / :class:`ScenarioEnd` — one experiment scenario
  (one :class:`~repro.harness.engine.ScenarioSpec` run), demarcating the
  stream so exports of multi-scenario runs stay attributable.
* :class:`SnapshotTaken` / :class:`RollbackPerformed` /
  :class:`RequestQuarantined` / :class:`FaultInjected` — the self-healing
  lifecycle (PR 10): incremental snapshots, rollback recoveries (and
  boot-image restarts, flagged), poison-request quarantines, and injected
  faults, all flowing through the same stream so ``fleet report`` rebuilds
  recovery tallies from an export exactly.

Every event type serializes to a flat JSON record via :func:`to_record` and
back via :func:`from_record`; the round trip is exact (property-tested), which
is what lets ``repro trace`` re-summarize an exported run offline with the
same aggregate counts the live run produced.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

from repro.errors import AccessKind, ErrorKind, MemoryErrorEvent


@dataclass(frozen=True)
class InvalidAccess:
    """One attempted invalid memory access (the §3 error-log entry).

    ``count > 1`` makes this a *run* record standing for ``count`` per-byte
    events at offsets ``error.offset + stride * i`` (all other fields equal);
    :meth:`expand` materializes that sequence.
    """

    error: MemoryErrorEvent
    count: int = 1
    stride: int = 1

    def expand(self) -> Iterator[MemoryErrorEvent]:
        """Yield the per-byte error events this record stands for."""
        yield self.error
        for i in range(1, self.count):
            yield replace(self.error, offset=self.error.offset + self.stride * i)


def expand_invalid_accesses(events: Iterable["InvalidAccess"]) -> List[MemoryErrorEvent]:
    """Flatten a stream of (possibly run-carrying) records to per-byte events."""
    out: List[MemoryErrorEvent] = []
    for event in events:
        out.extend(event.expand())
    return out


@dataclass(frozen=True)
class Discard:
    """An invalid write whose bytes the policy dropped (or stored, boundless)."""

    length: int
    site: str = ""
    request_id: Optional[int] = None
    #: True when a boundless policy kept the bytes in its side store instead
    #: of dropping them outright.
    stored: bool = False
    #: Number of per-byte discard decisions batched into this record (1 for a
    #: block access, ``length`` for a batched per-byte run).
    count: int = 1


@dataclass(frozen=True)
class Manufacture:
    """Manufactured bytes supplied for an invalid read."""

    length: int
    site: str = ""
    request_id: Optional[int] = None
    #: Number of per-byte manufacture decisions batched into this record.
    count: int = 1


@dataclass(frozen=True)
class Redirect:
    """An out-of-bounds access wrapped back into its unit (§5.1 redirect)."""

    offset: int
    redirect_offset: int
    length: int
    access: str = AccessKind.READ.value
    site: str = ""
    request_id: Optional[int] = None
    #: Number of per-byte redirected accesses batched into this record.
    count: int = 1


@dataclass(frozen=True)
class AllocFree:
    """One heap allocator operation (``malloc`` or ``free``)."""

    op: str
    unit_name: str
    size: int
    base: int
    request_id: Optional[int] = None


@dataclass(frozen=True)
class RequestStart:
    """A server began processing one request; ``request_id`` is the trace id."""

    request_id: int
    kind: str
    is_attack: bool = False


@dataclass(frozen=True)
class RequestEnd:
    """A server finished one request, with its classified outcome.

    ``memory_errors`` and ``error_sites`` summarize the invalid accesses the
    request provoked (the same per-request attribution
    :class:`~repro.errors.RequestResult` carries), so aggregate consumers can
    tally request-scoped error statistics from this one event without
    replaying the interleaved :class:`InvalidAccess` stream.
    """

    request_id: int
    kind: str
    outcome: str
    is_attack: bool = False
    elapsed_seconds: float = 0.0
    memory_errors: int = 0
    error_sites: Tuple[Tuple[str, int], ...] = ()


@dataclass(frozen=True)
class ScenarioStart:
    """One experiment scenario began (one ScenarioSpec dispatched by the engine)."""

    scenario_id: int
    server: str
    policy: str
    workload: str
    scale: float = 1.0


@dataclass(frozen=True)
class ScenarioEnd:
    """The scenario finished after ``seconds`` of wall clock."""

    scenario_id: int
    seconds: float = 0.0


@dataclass(frozen=True)
class SnapshotTaken:
    """A recovery supervisor captured one incremental snapshot.

    ``index`` is the snapshot's position in its stream (0 is the base
    image); ``blocks`` / ``delta_bytes`` are the dirty-block count and
    payload size of the delta — the live record of what a cadence costs.
    """

    index: int
    blocks: int = 0
    delta_bytes: int = 0
    request_id: Optional[int] = None


@dataclass(frozen=True)
class RollbackPerformed:
    """A server was rolled back after a fatal fault (or restarted from boot).

    ``request_id`` names the request whose fatal attempt triggered the
    rollback when that attempt is *non-terminal* (the supervisor retries or
    quarantines it); tally consumers use it to cancel the attempt's
    failed-count.  ``request_id is None`` means the rollback did not undo a
    terminal request disposition — the scheduler's restart-on-death path and
    loop-degradation restarts.  ``to_boot_image`` distinguishes full
    boot-image restarts from snapshot rollbacks.
    """

    snapshot_index: int
    request_id: Optional[int] = None
    kind: str = ""
    is_attack: bool = False
    blocks_restored: int = 0
    to_boot_image: bool = False
    backoff_virtual_seconds: float = 0.0


@dataclass(frozen=True)
class RequestQuarantined:
    """A poison request was dropped after killing the server repeatedly.

    The terminal disposition of the request (its fatal attempts were each
    cancelled by a :class:`RollbackPerformed`), mirroring how the fleet's
    boot-fatal drops flow through the stream as synthetic request ends.
    """

    request_id: int
    kind: str
    is_attack: bool = False
    attempts: int = 0


@dataclass(frozen=True)
class FaultInjected:
    """The fault injector fired once (corruption, failed alloc, or abort)."""

    kind: str
    request_id: Optional[int] = None
    address: int = 0
    length: int = 0
    point: str = ""


#: Registry mapping the on-disk ``event`` tag to the event class.
EVENT_TYPES: Dict[str, type] = {
    "invalid-access": InvalidAccess,
    "discard": Discard,
    "manufacture": Manufacture,
    "redirect": Redirect,
    "alloc-free": AllocFree,
    "request-start": RequestStart,
    "request-end": RequestEnd,
    "scenario-start": ScenarioStart,
    "scenario-end": ScenarioEnd,
    "snapshot-taken": SnapshotTaken,
    "rollback": RollbackPerformed,
    "request-quarantined": RequestQuarantined,
    "fault-injected": FaultInjected,
}

_TYPE_NAMES = {cls: name for name, cls in EVENT_TYPES.items()}


def event_name(event: object) -> str:
    """Return the registry tag for an event instance (KeyError if unknown)."""
    return _TYPE_NAMES[type(event)]


def to_record(event: object) -> Dict[str, object]:
    """Serialize one event to a flat JSON-compatible dict.

    The ``event`` key carries the registry tag; :class:`InvalidAccess` flattens
    its nested :class:`~repro.errors.MemoryErrorEvent` (enums as their string
    values).  ``error_sites`` tuples become lists (JSON has no tuples); the
    deserializer restores them.
    """
    if isinstance(event, InvalidAccess):
        error = event.error
        return {
            "event": "invalid-access",
            "kind": error.kind.value,
            "access": error.access.value,
            "unit_name": error.unit_name,
            "unit_size": error.unit_size,
            "offset": error.offset,
            "length": error.length,
            "site": error.site,
            "request_id": error.request_id,
            "count": event.count,
            "stride": event.stride,
        }
    record: Dict[str, object] = {"event": event_name(event)}
    for field in fields(event):
        value = getattr(event, field.name)
        if field.name == "error_sites":
            value = [list(pair) for pair in value]
        record[field.name] = value
    return record


def from_record(record: Dict[str, object]) -> object:
    """Deserialize one :func:`to_record` dict back into its event instance.

    Unknown keys (``scope``, ``scenario`` — stamped by the export session) are
    ignored, so records read back from a ``repro trace`` export parse as-is.
    """
    tag = record.get("event")
    try:
        cls: Type = EVENT_TYPES[tag]  # type: ignore[index]
    except KeyError:
        raise ValueError(f"unknown event type {tag!r}") from None
    if cls is InvalidAccess:
        return InvalidAccess(
            error=MemoryErrorEvent(
                kind=ErrorKind(record["kind"]),
                access=AccessKind(record["access"]),
                unit_name=record["unit_name"],
                unit_size=record["unit_size"],
                offset=record["offset"],
                length=record["length"],
                site=record.get("site", ""),
                request_id=record.get("request_id"),
            ),
            count=record.get("count", 1),
            stride=record.get("stride", 1),
        )
    kwargs = {}
    for field in fields(cls):
        if field.name not in record:
            continue
        value = record[field.name]
        if field.name == "error_sites":
            value = tuple((site, count) for site, count in value)
        kwargs[field.name] = value
    return cls(**kwargs)
