"""Offline queries over an exported trace (JSONL or SQLite).

``repro trace summary`` and ``repro trace filter`` are thin wrappers over this
module: read an export produced by a :class:`~repro.telemetry.session.TelemetrySession`
(JSONL) or a :class:`~repro.telemetry.sqlite.SqliteSink` (SQLite — the format
is sniffed from the file), optionally filter by server / policy / site /
request kind, and aggregate the same counters the live
:class:`~repro.telemetry.sinks.CounterSink` maintains — so an exported run
re-summarizes to identical aggregate counts whichever sink recorded it.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional

from repro.telemetry.events import RequestEnd, from_record
from repro.telemetry.sinks import CounterSink


def iter_records(path: str) -> Iterator[Dict[str, object]]:
    """Yield the JSON records of an exported JSONL trace, in file order."""
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                yield json.loads(line)


def iter_trace_records(path: str) -> Iterator[Dict[str, object]]:
    """Yield the records of an exported trace, sniffing JSONL vs SQLite.

    Both export formats store the same record dicts (the SQLite ``record``
    column is one JSONL line's parse), so every downstream consumer of this
    iterator is format-agnostic.
    """
    from repro.telemetry.sqlite import is_sqlite_file, iter_sqlite_records

    if is_sqlite_file(path):
        return iter_sqlite_records(path)
    return iter_records(path)


def matches(
    record: Dict[str, object],
    server: Optional[str] = None,
    policy: Optional[str] = None,
    site: Optional[str] = None,
    kind: Optional[str] = None,
) -> bool:
    """True if one record passes the given filters.

    ``server`` and ``policy`` match the record's scope (or the scenario
    events' own fields); ``site`` substring-matches error/continuation sites
    (the error-log convention); ``kind`` matches the request kind of
    request-start/request-end records.  A filter on a field the record does
    not carry excludes it, so e.g. ``--site`` reduces the stream to the
    access-level events attributed to that site.
    """
    scope = record.get("scope") or {}
    if server is not None:
        scoped = scope.get("server", record.get("server"))
        if scoped != server:
            return False
    if policy is not None:
        scoped = scope.get("policy", record.get("policy"))
        if scoped != policy:
            return False
    if site is not None:
        record_site = record.get("site")
        if not isinstance(record_site, str) or site not in record_site:
            return False
    if kind is not None:
        if record.get("event") not in ("request-start", "request-end"):
            return False
        if record.get("kind") != kind:
            return False
    return True


def filter_records(
    records: Iterable[Dict[str, object]],
    server: Optional[str] = None,
    policy: Optional[str] = None,
    site: Optional[str] = None,
    kind: Optional[str] = None,
) -> Iterator[Dict[str, object]]:
    """Yield only the records passing the filters (see :func:`matches`)."""
    for record in records:
        if matches(record, server=server, policy=policy, site=site, kind=kind):
            yield record


class TraceSummary:
    """Aggregate counts over a (possibly filtered) exported trace.

    There is exactly one implementation of the counter semantics: each record
    is deserialized back into its typed event (:func:`~repro.telemetry.events.from_record`)
    and fed to the same :class:`~repro.telemetry.sinks.CounterSink` the live
    buses use, which is what guarantees an export re-summarizes to the counts
    the run produced.  Only the export-level bookkeeping (scope, scenarios,
    record tags) lives here.
    """

    def __init__(self) -> None:
        self.total_events = 0
        #: Logical event counts keyed by the on-disk ``event`` tag.  Run
        #: records (``count > 1``) weigh in at their count, so a flood
        #: summarizes identically whether it was exported per byte or as
        #: batched runs; ``total_events`` stays the raw record count.
        self.by_type: Counter = Counter()
        self.attack_requests = 0
        self.servers: Counter = Counter()
        self.policies: Counter = Counter()
        self.counters = CounterSink()

    def add(self, record: Dict[str, object]) -> None:
        """Fold one record into the summary."""
        self.total_events += 1
        count = record.get("count", 1)
        if not isinstance(count, int) or count < 1:
            count = 1
        self.by_type[record.get("event")] += count
        scope = record.get("scope") or {}
        # The per-server/per-policy tallies weigh runs like by_type does, so
        # they too are independent of whether a flood was exported per byte
        # or as run records.
        if "server" in scope:
            self.servers[scope["server"]] += count
        if "policy" in scope:
            self.policies[scope["policy"]] += count
        try:
            event = from_record(record)
        except (ValueError, KeyError, TypeError):
            return  # unknown/foreign record: counted in by_type only
        self.counters.emit(event)
        if isinstance(event, RequestEnd) and event.is_attack:
            self.attack_requests += 1

    # -- delegated aggregate counters (one implementation: CounterSink) --------

    @property
    def scenarios(self) -> int:
        """Number of scenario-start events (scenarios in the trace)."""
        return self.by_type["scenario-start"]

    @property
    def invalid_total(self) -> int:
        return self.counters.invalid_total

    @property
    def invalid_by_site(self) -> Counter:
        return self.counters.invalid_by_site

    @property
    def invalid_by_kind(self) -> Counter:
        return self.counters.invalid_by_kind

    @property
    def invalid_by_access(self) -> Counter:
        return self.counters.invalid_by_access

    @property
    def manufactured_bytes(self) -> int:
        return self.counters.manufactured_bytes

    @property
    def discarded_bytes(self) -> int:
        return self.counters.discarded_bytes

    @property
    def stored_bytes(self) -> int:
        return self.counters.stored_bytes

    @property
    def redirected_accesses(self) -> int:
        return self.counters.redirected_accesses

    @property
    def allocations(self) -> int:
        return self.counters.allocations

    @property
    def frees(self) -> int:
        return self.counters.frees

    @property
    def requests_by_outcome(self) -> Counter:
        return self.counters.requests_by_outcome

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TraceSummary) and self.__dict__ == other.__dict__

    __hash__ = None  # mutable aggregate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TraceSummary {self.total_events} events, "
                f"{self.invalid_total} invalid accesses>")


def summarize_records(records: Iterable[Dict[str, object]]) -> TraceSummary:
    """Aggregate an iterable of records into a :class:`TraceSummary`."""
    summary = TraceSummary()
    for record in records:
        summary.add(record)
    return summary


def summarize_trace(
    path: str,
    server: Optional[str] = None,
    policy: Optional[str] = None,
    site: Optional[str] = None,
    kind: Optional[str] = None,
) -> TraceSummary:
    """Summarize an exported trace file (JSONL or SQLite), with filters.

    The two formats carry identical record dicts, so the same export
    summarized from its JSONL and its SQLite form produces equal summaries.
    """
    return summarize_records(
        filter_records(iter_trace_records(path), server=server, policy=policy,
                       site=site, kind=kind)
    )


#: Backwards-compatible name (pre-SQLite callers); sniffs the format too.
summarize_jsonl = summarize_trace


def request_traces(records: Iterable[Dict[str, object]]) -> List[Dict[str, object]]:
    """Group access-level events under their request (trace) ids.

    Returns one dict per observed request, in first-seen order, with the
    request-start/request-end records and the correlated invalid-access /
    continuation events — the forensic view the Pine walkthrough in the README
    is built on.

    Traces are keyed by ``(scenario, request_id)``, not the request id alone:
    forked ``run_many`` workers inherit the same request-id counter, so ids
    recur across scenarios in a multi-worker export and only the scenario
    stamp disambiguates them.
    """
    traces: Dict[object, Dict[str, object]] = {}

    def trace_for(record: Dict[str, object]) -> Dict[str, object]:
        key = (record.get("scenario"), record.get("request_id"))
        if key not in traces:
            traces[key] = {
                "scenario": record.get("scenario"),
                "request_id": record.get("request_id"),
                "start": None,
                "end": None,
                "events": [],
            }
        return traces[key]

    for record in records:
        event = record.get("event")
        if event == "request-start":
            trace_for(record)["start"] = record
        elif event == "request-end":
            trace_for(record)["end"] = record
        elif event in ("invalid-access", "discard", "manufacture", "redirect", "alloc-free"):
            if record.get("request_id") is not None:
                trace_for(record)["events"].append(record)
    return list(traces.values())
