"""Live rolling statistics: the bounded-memory sink for fleet-scale runs.

A :class:`CoalescingRingSink` bounds *event storage*, but a soak that runs for
10^6-10^7 requests still wants a live, queryable view of every server it is
driving — served/failed/survived counts, error totals, hottest sites — without
retaining the stream.  :class:`StatsSink` is that view: one rolling
:class:`~repro.telemetry.sinks.CounterSink` per ``(server, policy)`` key, fed
through per-instance :meth:`StatsSink.view` adapters, with a periodic *flush*
that appends a compact snapshot row to a bounded deque.  Memory is
O(keys x distinct sites + snapshots), independent of run length — this is the
"stats-style live sink" the ROADMAP names as the prerequisite for fleet soaks.

The snapshot trail doubles as a coarse time series: a dashboard (or a test)
can diff consecutive snapshots to see the request rate and error mix evolve
over the run without any per-event storage.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.telemetry.events import RequestEnd
from repro.telemetry.sinks import CounterSink, Sink

#: A rolling-counter key: ``(server, policy)``.
StatsKey = Tuple[str, str]


class StatsView(Sink):
    """The per-instance adapter: stamps a fixed key onto a shared StatsSink.

    Bus sinks receive bare events (the bus's scope is only stamped at JSONL
    export time), so a shared aggregator cannot tell which server emitted
    what.  Each server instance therefore attaches its own view, which
    forwards every event to the shared :class:`StatsSink` under that
    instance's ``(server, policy)`` key.
    """

    __slots__ = ("_stats", "key")

    def __init__(self, stats: "StatsSink", key: StatsKey) -> None:
        self._stats = stats
        self.key = key

    def emit(self, event: object) -> None:
        self._stats.emit_keyed(self.key, event)


class StatsSink:
    """Rolling per-``(server, policy)`` counters with periodic flush snapshots.

    Parameters
    ----------
    flush_every:
        Number of :class:`~repro.telemetry.events.RequestEnd` events (across
        all keys) between snapshot flushes.  0 disables periodic flushing
        (:meth:`flush` can still be called explicitly).
    max_snapshots:
        Bound on the retained snapshot trail (oldest dropped first), so the
        sink's memory stays O(1) in run length.
    """

    def __init__(self, flush_every: int = 10_000, max_snapshots: int = 64) -> None:
        if flush_every < 0:
            raise ValueError("flush_every must be >= 0")
        self.flush_every = flush_every
        self.counters: Dict[StatsKey, CounterSink] = {}
        self.events_seen = 0
        self.requests_seen = 0
        self._requests_at_last_flush = 0
        self.snapshots: Deque[Dict[str, object]] = deque(maxlen=max_snapshots)

    def view(self, server: str, policy: str) -> StatsView:
        """An attachable per-instance sink feeding this aggregator's key."""
        return StatsView(self, (server, policy))

    def emit_keyed(self, key: StatsKey, event: object) -> None:
        """Fold one event into the rolling counters for ``key``."""
        counter = self.counters.get(key)
        if counter is None:
            counter = self.counters[key] = CounterSink()
        counter.emit(event)
        self.events_seen += 1
        if isinstance(event, RequestEnd) and event.kind != "__startup__":
            self.requests_seen += 1
            if (self.flush_every
                    and self.requests_seen - self._requests_at_last_flush
                    >= self.flush_every):
                self.flush()

    # -- snapshots ---------------------------------------------------------------

    def flush(self) -> Dict[str, object]:
        """Append (and return) a compact snapshot of the rolling counters.

        Snapshot rows carry cumulative counts; consumers diff consecutive
        rows to recover per-interval rates.
        """
        snapshot: Dict[str, object] = {
            "requests_seen": self.requests_seen,
            "events_seen": self.events_seen,
            "keys": {
                f"{server}/{policy}": {
                    "requests_by_outcome": dict(counter.requests_by_outcome),
                    "invalid_total": counter.invalid_total,
                    "manufactured_bytes": counter.manufactured_bytes,
                    "discarded_bytes": counter.discarded_bytes,
                    "redirected_accesses": counter.redirected_accesses,
                }
                for (server, policy), counter in sorted(self.counters.items())
            },
        }
        self.snapshots.append(snapshot)
        self._requests_at_last_flush = self.requests_seen
        return snapshot

    # -- queries -----------------------------------------------------------------

    def keys(self) -> List[StatsKey]:
        """The ``(server, policy)`` keys observed so far, sorted."""
        return sorted(self.counters)

    def counter(self, server: str, policy: str) -> Optional[CounterSink]:
        """The rolling counter for one key (None if never observed)."""
        return self.counters.get((server, policy))

    def merge(self, other: "StatsSink") -> None:
        """Fold another StatsSink's counters into this one (key-wise).

        Used by the fleet scheduler to combine per-shard aggregates after a
        fork-pool fan-out; snapshot trails are not merged (they are per-shard
        time series), only the rolling totals.
        """
        for key, counter in other.counters.items():
            mine = self.counters.get(key)
            if mine is None:
                mine = self.counters[key] = CounterSink()
            mine.by_type.update(counter.by_type)
            mine.invalid_total += counter.invalid_total
            mine.invalid_by_site.update(counter.invalid_by_site)
            mine.invalid_by_kind.update(counter.invalid_by_kind)
            mine.invalid_by_access.update(counter.invalid_by_access)
            mine.manufactured_bytes += counter.manufactured_bytes
            mine.discarded_bytes += counter.discarded_bytes
            mine.stored_bytes += counter.stored_bytes
            mine.redirected_accesses += counter.redirected_accesses
            mine.allocations += counter.allocations
            mine.frees += counter.frees
            mine.requests_by_outcome.update(counter.requests_by_outcome)
        self.events_seen += other.events_seen
        self.requests_seen += other.requests_seen


__all__ = ["StatsKey", "StatsSink", "StatsView"]
