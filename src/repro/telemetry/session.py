"""Process-spanning JSONL export: the sink that survives the fork pool.

A :class:`TelemetrySession` is an ambient export target: while one is active,
every :class:`~repro.telemetry.bus.EventBus` forwards each emitted event to it
(stamped with the bus's scope — server and policy names — and the scenario the
engine is currently running).  Each *process* writes its own newline-delimited
JSON spill file, so `ExperimentEngine.run_many`'s forked workers never contend
on one file descriptor; :meth:`TelemetrySession.merge` reassembles the spills
into a single stream ordered by scenario id (i.e. spec order), which is the
file ``repro trace`` consumes.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
import tempfile
from typing import Dict, IO, Iterator, List, Mapping, Optional

from repro.telemetry.events import to_record

#: The active session, if any.  Process-global on purpose: forked pool workers
#: inherit it, which is exactly what routes their events into per-worker spill
#: files without any pickling or socket plumbing.
_ACTIVE: Optional["TelemetrySession"] = None


def current_session() -> Optional["TelemetrySession"]:
    """Return the active telemetry session, or None when exports are off."""
    return _ACTIVE


class TelemetrySession:
    """Context manager that captures the whole event stream as JSONL.

    Parameters
    ----------
    directory:
        Where the per-process spill files go.  Defaults to a fresh temporary
        directory.  Spill files are named ``spill-<pid>.jsonl``; after the
        run, :meth:`merge` combines them in scenario order.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self._own_dir = directory is None
        self.directory = directory or tempfile.mkdtemp(prefix="repro-trace-")
        os.makedirs(self.directory, exist_ok=True)
        self._files: Dict[int, IO[str]] = {}
        self._scenario_id: Optional[int] = None
        self._next_scenario = itertools.count()

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "TelemetrySession":
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("a telemetry session is already active")
        _ACTIVE = self
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        _ACTIVE = None
        self.close()

    def close(self) -> None:
        """Flush and close this process's spill files."""
        pid = os.getpid()
        handle = self._files.pop(pid, None)
        if handle is not None:
            handle.close()
        # Handles inherited from the parent across a fork are abandoned, not
        # closed: closing them here would close the parent's descriptor state.
        self._files.clear()

    def cleanup(self) -> None:
        """Delete the spill files (and the directory, if this session made it).

        Call after :meth:`merge` once the combined export is safely written.
        """
        self.close()
        for path in self.spill_paths():
            try:
                os.unlink(path)
            except OSError:
                pass
        if self._own_dir:
            try:
                os.rmdir(self.directory)
            except OSError:
                pass

    # -- scenario demarcation ----------------------------------------------------

    def begin_scenario(self, scenario_id: Optional[int] = None) -> int:
        """Start stamping events with a scenario id (explicit or auto-assigned).

        ``ExperimentEngine.run_many`` passes the spec index explicitly so that
        ids are globally consistent across pool workers; direct ``run`` calls
        draw from this process's counter.
        """
        sid = scenario_id if scenario_id is not None else next(self._next_scenario)
        self._scenario_id = sid
        return sid

    def end_scenario(self) -> None:
        """Stop stamping events with the current scenario id."""
        self._scenario_id = None

    @contextlib.contextmanager
    def scenario_scope(self, scenario_id: int) -> Iterator[int]:
        """Stamp events with ``scenario_id`` for the duration of the block,
        then restore the previous stamp.

        Unlike :meth:`begin_scenario`/:meth:`end_scenario` (which clear the
        stamp), this nests: sub-scopes inside an engine-managed scenario — the
        soak workload stamping each shard with its index — leave the outer
        scenario's stamp intact for the events that follow.
        """
        previous = self._scenario_id
        self._scenario_id = scenario_id
        try:
            yield scenario_id
        finally:
            self._scenario_id = previous

    # -- writing -----------------------------------------------------------------

    def _spill_file(self) -> IO[str]:
        pid = os.getpid()
        handle = self._files.get(pid)
        if handle is None:
            path = os.path.join(self.directory, f"spill-{pid}.jsonl")
            # Line buffered so worker processes that exit without an explicit
            # close (the pool tears them down) leave complete files behind.
            handle = open(path, "a", buffering=1, encoding="utf-8")
            self._files[pid] = handle
        return handle

    def write(self, event: object, scope: Optional[Mapping[str, str]] = None) -> None:
        """Append one event to this process's spill file."""
        record = to_record(event)
        if scope:
            record["scope"] = dict(scope)
        if self._scenario_id is not None:
            record["scenario"] = self._scenario_id
        self._spill_file().write(json.dumps(record) + "\n")

    # -- merging -----------------------------------------------------------------

    def spill_paths(self) -> List[str]:
        """The spill files written so far, in deterministic (name) order."""
        names = sorted(
            name
            for name in os.listdir(self.directory)
            if name.startswith("spill-") and name.endswith(".jsonl")
        )
        return [os.path.join(self.directory, name) for name in names]

    def merge(self, out_path: str) -> int:
        """Combine the spill files into ``out_path``, ordered by scenario.

        Events keep their within-process order; across processes they are
        ordered by scenario id (spec order in a ``run_many`` fan-out), with
        unscoped events (no scenario) first.  Returns the number of events
        written.

        Scenarios run sequentially within a process, so each spill file is a
        concatenation of contiguous scenario blocks; the merge indexes those
        blocks in one scan and then copies raw lines block by block, keeping
        memory O(blocks) rather than O(events) for flood-sized exports.
        """
        pid = os.getpid()
        handle = self._files.get(pid)
        if handle is not None:
            handle.flush()
        # (scenario_key, discovery_order, path, start_offset, end_offset);
        # offsets are byte positions, so the copy pass can seek in binary mode.
        blocks: List[tuple] = []
        total = 0
        for path in self.spill_paths():
            block_key = None
            block_start = None
            offset = 0
            with open(path, "rb") as spill:
                for line in spill:
                    end = offset + len(line)
                    if line.strip():
                        total += 1
                        key = json.loads(line).get("scenario", -1)
                        if key != block_key or block_start is None:
                            if block_start is not None:
                                blocks.append((block_key, len(blocks), path,
                                               block_start, offset))
                            block_key, block_start = key, offset
                    offset = end
                if block_start is not None:
                    blocks.append((block_key, len(blocks), path, block_start, offset))
        blocks.sort(key=lambda block: (block[0], block[1]))
        with open(out_path, "wb") as out:
            for _key, _order, path, start, end in blocks:
                with open(path, "rb") as spill:
                    spill.seek(start)
                    out.write(spill.read(end - start))
        return total
