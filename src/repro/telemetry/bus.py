"""The event bus: one ``emit`` call fans an event out to every consumer.

Each simulated process image (one policy + one memory context + one server)
owns one bus.  The policy's error-log façade attaches the bounded ring and the
aggregate counters, experiments attach their own sinks, and when a
:class:`~repro.telemetry.session.TelemetrySession` is active every emit is
additionally forwarded there for JSONL export — stamped with this bus's
``scope`` (server and policy names) so exported streams from many servers
remain attributable after merging.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry.session import current_session
from repro.telemetry.sinks import Sink


class EventBus:
    """Synchronous fan-out of typed events to attached sinks.

    Attributes
    ----------
    scope:
        Labels merged into exported records (``server``, ``policy``).  Set by
        whoever knows them: the policy stamps its name at construction, the
        server stamps its name when it builds its memory context.
    current_request_id:
        The request being processed, stamped onto events emitted by components
        that do not carry their own request attribution (the allocator).
    """

    __slots__ = ("_sinks", "scope", "current_request_id")

    def __init__(self) -> None:
        self._sinks: List[Sink] = []
        self.scope: Dict[str, str] = {}
        self.current_request_id: Optional[int] = None

    def attach(self, sink: Sink) -> Sink:
        """Attach a sink (returned for chaining).

        Identity-based: the same object is not added twice, but two distinct
        sinks that happen to compare equal (e.g. two empty counters) are.
        """
        if not any(attached is sink for attached in self._sinks):
            self._sinks.append(sink)
        return sink

    def detach(self, sink: Sink) -> None:
        """Detach a sink (by identity); detaching an unattached sink is a no-op."""
        self._sinks = [attached for attached in self._sinks if attached is not sink]

    @property
    def sinks(self) -> List[Sink]:
        """The attached sinks (a copy; attach/detach to modify)."""
        return list(self._sinks)

    def emit(self, event: object) -> None:
        """Deliver one event to every attached sink and any active export session."""
        for sink in self._sinks:
            sink.emit(event)
        session = current_session()
        if session is not None:
            session.write(event, self.scope)
