"""Reimplementations of the five servers evaluated in the paper.

Each module reproduces the *vulnerable code path* documented in Section 4 of
the paper, written against the simulated memory substrate so the documented
memory error actually happens, embedded in a request-processing server:

* :mod:`repro.servers.pine` — Pine 4.44 From-field quoting heap overflow (§4.2).
* :mod:`repro.servers.apache` — Apache 2.0.47 mod_rewrite capture-offset stack
  overflow (§4.3), plus the pre-fork child process pool.
* :mod:`repro.servers.sendmail` — Sendmail 8.11.6 prescan address-parsing stack
  overflow (§4.4), plus the benign wake-up memory error.
* :mod:`repro.servers.midnight_commander` — Midnight Commander 4.5.55 tgz
  symlink ``strcat`` overflow of an uninitialized stack buffer (§4.5), plus the
  blank-configuration-line error and the ``/``-search loop from §3.
* :mod:`repro.servers.mutt` — Mutt 1.4 ``utf8_to_utf7`` heap overflow (§4.6,
  Figure 1).

All servers share the :class:`~repro.servers.base.Server` lifecycle: they are
constructed with a policy factory (the "compiler choice"), booted with
:meth:`~repro.servers.base.Server.start`, and fed
:class:`~repro.servers.base.Request` objects, producing
:class:`~repro.errors.RequestResult` outcomes the harness aggregates.
"""

from repro.servers.base import Request, Response, Server, ServerError
from repro.servers.profile import (
    PROFILES,
    ServerProfile,
    get_profile,
    iter_profiles,
    profile_names,
    register_profile,
    unregister_profile,
)
from repro.servers.pine import PineServer
from repro.servers.apache import ApacheServer, ChildProcessPool
from repro.servers.sendmail import SendmailServer
from repro.servers.midnight_commander import MidnightCommanderServer
from repro.servers.mutt import MuttServer
from repro.servers.minic_host import (
    MiniCPineServer,
    MiniCSendmailServer,
    MiniCServer,
)

#: The five servers of the paper's evaluation.  Experiment code that wants
#: *every* registered server (including plugins) should consult
#: :data:`repro.servers.profile.PROFILES` instead; this mapping is the stable
#: paper-scope registry the default experiment sweeps iterate over.
SERVER_CLASSES = {
    "pine": PineServer,
    "apache": ApacheServer,
    "sendmail": SendmailServer,
    "midnight-commander": MidnightCommanderServer,
    "mutt": MuttServer,
}

__all__ = [
    "Request",
    "Response",
    "Server",
    "ServerError",
    "ServerProfile",
    "PROFILES",
    "get_profile",
    "iter_profiles",
    "profile_names",
    "register_profile",
    "unregister_profile",
    "PineServer",
    "ApacheServer",
    "ChildProcessPool",
    "SendmailServer",
    "MidnightCommanderServer",
    "MuttServer",
    "MiniCServer",
    "MiniCPineServer",
    "MiniCSendmailServer",
    "SERVER_CLASSES",
]
