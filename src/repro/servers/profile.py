"""Declarative server profiles: the pluggable surface of the experiment engine.

Historically the harness hard-coded every (server, experiment) pairing as
``if/elif`` chains, so adding a sixth server meant editing the harness core.
A :class:`ServerProfile` inverts that: each server module declares — next to
the server class itself — everything the paper's experiment shapes need:

* ``benchmark_config`` — how to size a benign configuration for repeated
  benchmark requests (Figures 2-6);
* ``figure_rows`` / ``figure_number`` — the request kinds that appear as rows
  of the server's request-time figure, and which paper figure that is;
* ``request_factory`` / ``reset_hooks`` — how to build one benign request of a
  given kind, and how to restore any state a request consumes;
* ``attack_config`` / ``attack_request`` — how to plant the documented error
  trigger and how to deliver the attack (§4.x.2);
* ``follow_ups`` — the legitimate requests issued after an attack to check
  the server still serves its users (the paper's acceptability criterion).

Profiles register themselves in a process-wide registry; the experiment
engine (:mod:`repro.harness.engine`) looks servers up there at run time, so a
new server — including one defined outside this package — plugs into every
experiment shape with zero harness edits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple, Type

from repro.servers.base import Request, Server

#: ``scale -> configuration dict`` benign benchmark configuration builder.
ConfigBuilder = Callable[[float], Dict[str, object]]

#: ``repetition index -> Request`` factory for one request kind.
RequestFactory = Callable[[int], Request]

#: Hook run before each repetition to restore state the request consumes.
ResetHook = Callable[[Server, int], None]


@dataclass(frozen=True)
class ServerProfile:
    """Everything the experiment engine needs to run one server.

    Only ``name`` and ``server_cls`` are mandatory; a profile that omits the
    optional pieces simply cannot run the experiment shapes that need them
    (e.g. no ``attack_request`` means no attack scenario).
    """

    #: Registry key, e.g. ``"pine"`` (also used on the command line).
    name: str
    #: The :class:`~repro.servers.base.Server` subclass to instantiate.
    server_cls: Type[Server]
    #: Request kinds forming the rows of the server's request-time figure.
    figure_rows: Tuple[str, ...] = ()
    #: Paper figure number for the request-time table (None for non-paper servers).
    figure_number: Optional[int] = None
    #: Builds the benign benchmark configuration for a given workload scale.
    benchmark_config: Optional[ConfigBuilder] = None
    #: ``(kind, repetition index) -> Request`` benign request builder.
    request_factory: Optional[Callable[[str, int], Request]] = None
    #: Per-kind state-restoring hooks (most request kinds need none).
    reset_hooks: Mapping[str, ResetHook] = field(default_factory=dict)
    #: Configuration overlay that plants the documented error trigger.
    attack_config: Optional[Callable[[], Dict[str, object]]] = None
    #: Builds the canonical attack request.
    attack_request: Optional[Callable[[], Request]] = None
    #: Builds the legitimate follow-up requests issued after an attack.
    follow_ups: Optional[Callable[[], List[Request]]] = None
    #: One-line description used in listings.
    description: str = ""

    # -- convenience accessors (fallbacks for omitted pieces) ----------------------

    def build_config(self, scale: float = 1.0) -> Dict[str, object]:
        """The benign benchmark configuration sized for ``scale``."""
        if self.benchmark_config is None:
            return {}
        return dict(self.benchmark_config(scale))

    def make_request(self, kind: str, index: int = 0) -> Request:
        """One benign request of ``kind`` for repetition ``index``."""
        if self.request_factory is None:
            raise KeyError(f"profile {self.name!r} defines no benign request factory")
        return self.request_factory(kind, index)

    def request_factory_for(self, kind: str) -> RequestFactory:
        """The per-repetition request factory for one figure row."""

        def factory(index: int) -> Request:
            return self.make_request(kind, index)

        return factory

    def reset_hook_for(self, kind: str) -> Optional[ResetHook]:
        """The state-restoring hook for ``kind``, or None if none is needed."""
        return self.reset_hooks.get(kind)

    def make_attack_config(self) -> Dict[str, object]:
        """Configuration overlay planting the documented error trigger."""
        if self.attack_config is None:
            return {}
        return dict(self.attack_config())

    def make_attack_request(self) -> Request:
        """The canonical attack request."""
        if self.attack_request is None:
            raise KeyError(f"profile {self.name!r} defines no attack request")
        return self.attack_request()

    def make_follow_ups(self) -> List[Request]:
        """Legitimate follow-up requests checking continued service."""
        if self.follow_ups is None:
            return []
        return list(self.follow_ups())


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: Process-wide profile registry, keyed by profile name.
PROFILES: Dict[str, ServerProfile] = {}


def register_profile(profile: ServerProfile) -> ServerProfile:
    """Register (or replace) a profile and return it.

    Returning the profile lets server modules write
    ``PROFILE = register_profile(ServerProfile(...))``.
    """
    PROFILES[profile.name] = profile
    return profile


def unregister_profile(name: str) -> Optional[ServerProfile]:
    """Remove a profile (used by tests and plugin teardown); returns it if present."""
    return PROFILES.pop(name, None)


def get_profile(name: str) -> ServerProfile:
    """Look up a profile by name.

    Raises
    ------
    KeyError
        If no profile with that name is registered.
    """
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown server {name!r}; expected one of {sorted(PROFILES)}"
        ) from None


def profile_names() -> List[str]:
    """Sorted names of every registered profile."""
    return sorted(PROFILES)


def iter_profiles() -> Iterator[ServerProfile]:
    """Iterate over registered profiles in name order."""
    for name in profile_names():
        yield PROFILES[name]
