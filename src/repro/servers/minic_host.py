"""In-VM server scenarios: the paper's vulnerable C functions, hosted live.

The five reimplemented servers translate the paper's overflow sites into
Python calls against the memory substrate.  This module closes the remaining
gap to the paper's methodology: the vulnerable functions are *compiled* —
the mini-C sources in :mod:`repro.minic.programs` are parsed, idiom-lowered
onto the span fast path, and interpreted inside the simulated address space —
and a thin :class:`MiniCServer` host turns each compiled program into a
request-serving process that plugs into every experiment shape through the
standard :class:`~repro.servers.profile.ServerProfile` registry (the same
zero-harness-edit path as ``examples/custom_server_plugin.py``).

Two scenarios are registered:

* ``minic-pine`` — Pine's ``est_size`` From-quoting overflow (§4.2) over a
  ``struct address`` linked list.
* ``minic-sendmail`` — the Sendmail ``crackaddr``-style comment-balancing
  buffer walk, rejected post-parse by the program's own length check under
  failure-oblivious execution.

Checkpoint restarts and pre-fork fleet clones work for these servers too:
the interpreter's Python-side state (global variable slots, the struct
pointer-handle registry, interned string literals, captured output) is
frozen into the process image as pure data — pointers become
``(base, offset)`` pairs — and re-bound to the restored object table on
restore, so a clone or a post-crash restart resumes with every mini-C
global pointing at the restored memory bytes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.memory.pointer import FatPointer
from repro.minic.interpreter import (
    FunctionRef,
    MiniCRuntimeError,
    NULL_POINTER,
    Program,
    ProgramInstance,
    TypedPointer,
    VarSlot,
)
from repro.minic.lower import compile_program
from repro.minic.programs import PINE_EST_SIZE_SOURCE, SENDMAIL_CRACKADDR_SOURCE
from repro.servers.base import Request, Response, Server, ServerError
from repro.servers.profile import ServerProfile, register_profile


# ---------------------------------------------------------------------------
# Freezing interpreter state into process images
# ---------------------------------------------------------------------------

def _freeze_value(value: object) -> tuple:
    """Encode one interpreter value as pure (picklable, ctx-free) data."""
    if isinstance(value, FunctionRef):
        return ("fn", value.name)
    if isinstance(value, TypedPointer):
        if value.is_null:
            return ("null",)
        pointer = value.pointer
        return ("ptr", pointer.referent.base, pointer.offset,
                value.elem_size, value.ctype)
    return ("int", int(value))


class MiniCServer(Server):
    """A server whose request handlers are functions of a mini-C program.

    Subclasses set :attr:`source` (overridable per-instance through the
    ``source`` configuration key) and implement :meth:`boot` — the program
    initialization calls — plus the request handlers, which call into the
    program with :meth:`call`.  Every memory access the program performs is
    mediated by the server's bound policy, so the same source behaves like
    the Standard, Bounds Check, or Failure Oblivious build of the paper.
    """

    name = "minic"

    #: The mini-C translation unit this server runs; subclasses override.
    source: str = ""

    #: The compiled program and its live instance are bound to ``self.ctx``
    #: and are re-derived on restore, so they stay out of the deep-copied
    #: process image alongside the context itself.
    _IMAGE_EXCLUDED_FIELDS = Server._IMAGE_EXCLUDED_FIELDS | {
        "program", "instance",
    }

    #: Key under which the frozen interpreter state rides in the image.
    _MINIC_STATE_KEY = "__minic_interpreter_state__"

    # -- lifecycle ---------------------------------------------------------------

    def compile(self) -> Program:
        """Compile the configured source (``lower=False`` keeps the tree-walk)."""
        source = str(self.config.get("source", self.source))
        return compile_program(source, lower=bool(self.config.get("lower", True)))

    def startup(self) -> None:
        self.program = self.compile()
        self.instance = self.program.instantiate(ctx=self.ctx)
        self.boot()

    def boot(self) -> None:
        """Subclass hook: run the program's initialization calls."""

    # -- calling into the program ---------------------------------------------------

    def call(self, function: str, *args):
        """Call a program function, mapping VM errors to anticipated rejections.

        A :class:`~repro.minic.interpreter.MiniCRuntimeError` is the program
        hitting a condition its own logic treats as fatal-but-handled (a null
        struct pointer decoded from a corrupted handle, ``abort()``); the
        server converts it into its ordinary error response.  Memory faults
        (segmentation violations, bounds-check terminations, loop-guard
        hangs) propagate to the lifecycle classifier unchanged.
        """
        try:
            return self.instance.call(function, *args)
        except MiniCRuntimeError as exc:
            raise ServerError(f"{self.name}: {exc}") from exc

    def global_string(self, name: str) -> bytes:
        """Read the NUL-terminated string a program global points at."""
        slot = self.instance.globals.get(name)
        if slot is None or not isinstance(slot.value, TypedPointer):
            raise ServerError(f"{self.name}: global {name!r} is not a string")
        return self.instance.read_string(slot.value)

    # -- checkpoint / restore ---------------------------------------------------------

    def _capture_state(self) -> Dict[str, object]:
        state = super()._capture_state()
        state[self._MINIC_STATE_KEY] = self._freeze_instance()
        return state

    def _freeze_instance(self) -> Optional[Dict[str, object]]:
        instance = self.__dict__.get("instance")
        if instance is None:
            return None
        return {
            "globals": {
                name: (_freeze_value(slot.value), slot.type)
                for name, slot in instance.globals.items()
            },
            "handles": {
                handle: _freeze_value(value)
                for handle, value in instance._handles.items()
            },
            "next_handle": instance._next_handle,
            "strings": {
                data: _freeze_value(pointer)
                for data, pointer in instance._string_cache.items()
            },
            "output": bytes(instance.output),
        }

    def _restore_image(self, image):
        result = super()._restore_image(image)
        snapshot = self.__dict__.pop(self._MINIC_STATE_KEY, None)
        if snapshot is None:
            # The checkpointed boot died before the program was instantiated;
            # drop any instance left over from a previous life.
            self.__dict__.pop("instance", None)
            return result
        if "program" not in self.__dict__:
            self.program = self.compile()
        self.instance = self._thaw_instance(snapshot)
        return result

    def _thaw_value(self, frozen: tuple):
        tag = frozen[0]
        if tag == "int":
            return frozen[1]
        if tag == "fn":
            return FunctionRef(frozen[1])
        if tag == "null":
            return NULL_POINTER
        _, base, offset, elem_size, ctype = frozen
        unit = self.ctx.table.find(base)
        if unit is None or unit.base != base:
            unit = self.ctx.table.find_retired(base)
        if unit is None or unit.base != base:
            # The unit does not exist in the restored image (it died before
            # the checkpoint and fell off the retired window): degrade to
            # NULL, the same story as a corrupted pointer handle.
            return NULL_POINTER
        return TypedPointer(FatPointer(unit, offset), elem_size, ctype)

    def _thaw_instance(self, snapshot: Dict[str, object]) -> ProgramInstance:
        """Re-bind a frozen interpreter snapshot to the restored context.

        ``ProgramInstance.__init__`` is bypassed deliberately: running the
        global initializers would allocate fresh units in memory that the
        image restore has already populated.
        """
        instance = ProgramInstance.__new__(ProgramInstance)
        instance.unit = self.program.unit
        instance.ctx = self.ctx
        instance.globals = {
            name: VarSlot(value=self._thaw_value(frozen), type=ctype)
            for name, (frozen, ctype) in snapshot["globals"].items()
        }
        instance.output = bytearray(snapshot["output"])
        instance._string_cache = {
            data: self._thaw_value(frozen)
            for data, frozen in snapshot["strings"].items()
        }
        instance._layouts = {}
        instance._handles = {
            handle: self._thaw_value(frozen)
            for handle, frozen in snapshot["handles"].items()
        }
        instance._handle_ids = {
            value: handle for handle, value in instance._handles.items()
        }
        instance._next_handle = snapshot["next_handle"]
        return instance


# ---------------------------------------------------------------------------
# Scenario 1: Pine's est_size From-quoting overflow (§4.2), compiled
# ---------------------------------------------------------------------------

#: Benign default mailbox.  Personal names contain no quotable characters,
#: so the buggy estimate happens to suffice — exactly the situation that let
#: the real bug survive in Pine for years.
DEFAULT_PINE_MAILBOX: List[Dict[str, bytes]] = [
    {"personal": b"Alice Adams", "mailbox": b"alice", "host": b"example.org",
     "subject": b"lunch", "body": b""},
    {"personal": b"", "mailbox": b"bob", "host": b"example.org",
     "subject": b"report", "body": b"draft attached"},
    {"personal": b"Carol Cho", "mailbox": b"carol", "host": b"example.net",
     "subject": b"hello", "body": b""},
]


def pine_attack_mailbox() -> List[Dict[str, bytes]]:
    """A mailbox whose From field drives the est_size overflow (§4.2).

    Every ``\\`` in the personal name is doubled by quoting but charged only
    once by the estimate, so this message overruns its display buffer by one
    byte per backslash.
    """
    poisoned = {
        "personal": b"\\" * 48,
        "mailbox": b"attacker",
        "host": b"evil.test",
        "subject": b"you have won",
        "body": b"",
    }
    return list(DEFAULT_PINE_MAILBOX) + [poisoned]


class MiniCPineServer(MiniCServer):
    """Pine's From-quoting overflow running as compiled mini-C.

    Request kinds
    -------------
    ``list``
        Rebuild the message index: one ``est_size``-sized buffer receives the
        quoted form of the whole address list (the vulnerable path).
    ``read``
        payload ``{"index": int}`` — display one message through the
        worst-case-correct translation (§4.2.2).
    ``lookup``
        payload ``{"mailbox": bytes}`` — walk the ``struct address`` list
        comparing mailbox names (exercises the pointer-handle registry).

    Configuration: ``mailbox`` is a list of message dicts with ``personal``/
    ``mailbox``/``host``/``subject``/``body`` byte strings.
    """

    name = "minic-pine"
    source = PINE_EST_SIZE_SOURCE

    def boot(self) -> None:
        self.messages: List[Dict[str, bytes]] = []
        for message in self.config.get("mailbox", DEFAULT_PINE_MAILBOX):
            self._add_message(dict(message))
        self.index_lines: List[bytes] = []
        self._build_index()

    def _add_message(self, message: Dict[str, bytes]) -> None:
        personal = bytes(message.get("personal", b""))
        self.call(
            "abook_add",
            personal if personal else 0,
            bytes(message["mailbox"]),
            bytes(message["host"]),
        )
        self.messages.append(message)

    def _quoted_list(self, function: str) -> bytes:
        """Quote the whole address book through ``addr_string``/`..._safe``."""
        pointer = self.call(function)
        quoted = self.instance.read_string(pointer)
        self.call("release", pointer)
        return quoted

    def _build_index(self) -> None:
        """The vulnerable index build: est_size buffer + per-line clipping."""
        self.ctx.set_site("minic_pine.addr_string")
        try:
            quoted = self._quoted_list("addr_string")
        finally:
            self.ctx.set_site("")
        lines = [b"Mail index: " + quoted[:60]]
        for number, message in enumerate(self.messages, start=1):
            display_from = message.get("personal") or (
                message["mailbox"] + b"@" + message["host"]
            )
            self.call("index_line", bytes(display_from), bytes(message["subject"]))
            lines.append(b"%3d  %s" % (number, self.global_string("line")))
        self.index_lines = lines

    def handle(self, request: Request) -> Response:
        if request.kind == "list":
            self._build_index()
            return Response.ok(body=b"\n".join(self.index_lines), detail="index rebuilt")
        if request.kind == "read":
            index = int(request.payload.get("index", 0))
            if not 0 <= index < len(self.messages):
                raise ServerError("no such message")
            message = self.messages[index]
            self.ctx.set_site("minic_pine.addr_string_safe")
            try:
                quoted = self._quoted_list("addr_string_safe")
            finally:
                self.ctx.set_site("")
            body = message.get("body", b"")
            return Response.ok(
                body=b"From: " + quoted + b"\nSubject: " + message["subject"]
                + b"\n\n" + body,
                detail="message displayed",
            )
        if request.kind == "lookup":
            mailbox = bytes(request.payload.get("mailbox", b""))
            found = self.call("abook_has", mailbox)
            if not found:
                raise ServerError(f"no address book entry for {mailbox!r}")
            return Response.ok(detail="found")
        raise ServerError(f"unknown minic-pine request kind {request.kind!r}")


# ---------------------------------------------------------------------------
# Scenario 2: the Sendmail crackaddr-style comment walk, compiled
# ---------------------------------------------------------------------------

#: Retained spool entries (the newest ones; a soak must not grow unboundedly).
SPOOL_KEEP = 64


def sendmail_attack_sender(opens: int = 400) -> bytes:
    """An address that is mostly comment-opens: each one is written to the
    parse buffer without a bounds check, walking the cursor past its end."""
    return b"attacker" + b"(" * opens


class MiniCSendmailServer(MiniCServer):
    """The crackaddr comment-balancing walk running as compiled mini-C.

    Request kinds
    -------------
    ``deliver``
        payload ``{"sender": bytes, "body": bytes}`` — parse the sender with
        ``crackaddr`` and spool the rendered header line.  The program's own
        post-parse length check turns a failure-obliviously survived overflow
        into a ``552`` rejection, the paper's §4.1 story.
    ``stat``
        no payload — report spool and rejection counters.
    """

    name = "minic-sendmail"
    source = SENDMAIL_CRACKADDR_SOURCE

    def boot(self) -> None:
        self.spooled: List[bytes] = []
        self.delivered = 0
        self.rejected = 0
        self.remote = 0

    def handle(self, request: Request) -> Response:
        if request.kind == "deliver":
            return self._handle_deliver(request)
        if request.kind == "stat":
            stats = (
                f"delivered {self.delivered} rejected {self.rejected} "
                f"remote {self.remote}"
            )
            return Response.ok(body=stats.encode("ascii"), detail="stats")
        raise ServerError(f"unknown minic-sendmail request kind {request.kind!r}")

    def _handle_deliver(self, request: Request) -> Response:
        sender = bytes(request.payload.get("sender", b""))
        body = bytes(request.payload.get("body", b""))
        self.ctx.set_site("minic_sendmail.crackaddr")
        try:
            length = self.call("format_header", sender, self.delivered + 1)
        finally:
            self.ctx.set_site("")
        if length < 0:
            self.rejected += 1
            raise ServerError("552 address too long")
        self.remote += int(self.call("is_remote", sender))
        header = self.global_string("header")
        self.spooled.append(header + b"\r\n" + body)
        del self.spooled[:-SPOOL_KEEP]
        self.delivered += 1
        return Response.ok(body=header, detail="spooled")


# ---------------------------------------------------------------------------
# Profiles: the zero-harness-edit plugin path
# ---------------------------------------------------------------------------

def _pine_benchmark_config(scale: float) -> Dict[str, object]:
    count = max(int(12 * scale), 3)
    mailbox = [
        dict(DEFAULT_PINE_MAILBOX[i % len(DEFAULT_PINE_MAILBOX)])
        for i in range(count)
    ]
    return {"mailbox": mailbox}


def _pine_request(kind: str, index: int) -> Request:
    if kind == "read":
        return Request(kind="read", payload={"index": 0})
    if kind == "lookup":
        return Request(kind="lookup", payload={"mailbox": b"alice"})
    return Request(kind="list")


PINE_PROFILE = register_profile(
    ServerProfile(
        name="minic-pine",
        server_cls=MiniCPineServer,
        figure_rows=("read", "list", "lookup"),
        benchmark_config=_pine_benchmark_config,
        request_factory=_pine_request,
        attack_config=lambda: {"mailbox": pine_attack_mailbox()},
        attack_request=lambda: Request(kind="list", is_attack=True),
        follow_ups=lambda: [
            Request(kind="read", payload={"index": 0}),
            Request(kind="lookup", payload={"mailbox": b"alice"}),
        ],
        description="Pine est_size From-quoting overflow, compiled mini-C (§4.2)",
    )
)


def _sendmail_request(kind: str, index: int) -> Request:
    if kind == "stat":
        return Request(kind="stat")
    return Request(
        kind="deliver",
        payload={"sender": b"alice@example.org", "body": b"hello there"},
    )


SENDMAIL_PROFILE = register_profile(
    ServerProfile(
        name="minic-sendmail",
        server_cls=MiniCSendmailServer,
        figure_rows=("deliver", "stat"),
        request_factory=_sendmail_request,
        attack_request=lambda: Request(
            kind="deliver",
            payload={"sender": sendmail_attack_sender(), "body": b""},
            is_attack=True,
        ),
        follow_ups=lambda: [
            Request(kind="deliver",
                    payload={"sender": b"bob@example.org", "body": b"follow-up"}),
            Request(kind="stat"),
        ],
        description="Sendmail crackaddr comment-balancing walk, compiled mini-C",
    )
)
