"""Midnight Commander 4.5.55: tgz symlink handling and the uninitialized stack buffer (§4.5).

Midnight Commander converts absolute symbolic links inside tgz archives into
links relative to the start of the archive.  It builds the relative link name
with ``strcat`` in a stack-allocated buffer that is never initialized, so the
component names of successive links simply accumulate; once their combined
length exceeds the buffer, ``strcat`` writes past its end.

Two further behaviours from the paper are reproduced:

* the configuration-file parser commits a memory error for every blank line in
  the configuration file (§4.5.4), which is what disables the Bounds Check
  build until the blank lines are removed; and
* the ``/``-search loop of §3, which scans past the end of a buffer looking
  for a ``/`` character and therefore only terminates under failure-oblivious
  execution if the manufactured value sequence eventually produces ``/``.

Build behaviour:

* Standard — the ``strcat`` overflow corrupts the stack and the process dies
  with a segmentation violation when it opens the malicious archive.
* Bounds Check — terminates at the first invalid access (and, with a blank
  line in the configuration, terminates during start-up).
* Failure Oblivious — discards the out-of-bounds writes; the subsequent lookup
  of the link target fails, which is an anticipated case displayed to the user
  as a dangling link, and the file manager keeps working (§4.5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import InfiniteLoopGuard
from repro.memory.cstring import strcat, write_c_string
from repro.servers.base import Request, Response, Server, ServerError

#: Size of the stack buffer in which relative link names are accumulated.
LINKNAME_BUFFER_SIZE = 128

#: Block size for file copies (Copy/Move of Figure 5 are dominated by these).
COPY_CHUNK = 64 * 1024

#: Iteration budget for the ``/``-search loop; generous enough that the paper's
#: manufactured value sequence always finds ``/`` long before the budget is
#: exhausted, but small enough that a degenerate sequence hangs quickly.
SLASH_SCAN_LIMIT = 4096

DEFAULT_CONFIG_TEXT = (
    "[Midnight-Commander]\n"
    "verbose=1\n"
    "pause_after_run=1\n"
    "show_backups=0\n"
    "confirm_delete=1\n"
)


@dataclass
class ArchiveEntry:
    """One entry of a simulated tgz archive."""

    name: str
    is_symlink: bool = False
    target: str = ""
    content: bytes = b""


@dataclass
class SimulatedVfs:
    """A trivially simple virtual file system backing the Figure 5 workload."""

    files: Dict[str, bytes] = field(default_factory=dict)
    directories: set = field(default_factory=set)

    def add_directory(self, path: str) -> None:
        self.directories.add(path.rstrip("/") or "/")

    def add_file(self, path: str, content: bytes) -> None:
        self.files[path] = content
        parent = path.rsplit("/", 1)[0] or "/"
        self.directories.add(parent)

    def exists(self, path: str) -> bool:
        return path in self.files or path.rstrip("/") in self.directories

    def tree(self, prefix: str) -> List[str]:
        """All file paths under a directory prefix."""
        prefix = prefix.rstrip("/") + "/"
        return [p for p in self.files if p.startswith(prefix)]


class MidnightCommanderServer(Server):
    """The Midnight Commander file manager.

    Request kinds
    -------------
    ``open_archive``
        payload ``{"entries": List[ArchiveEntry]}`` — browse a tgz archive,
        converting its symlinks (the vulnerable path).
    ``copy``
        payload ``{"source": str, "target": str}`` — copy a directory tree.
    ``move``
        payload ``{"source": str, "target": str}`` — move a directory tree.
    ``mkdir``
        payload ``{"path": str}`` — create a directory.
    ``delete``
        payload ``{"path": str}`` — delete a file.
    ``find_component``
        payload ``{"name": str}`` — run the §3 ``/``-search loop over the given
        name (used by the manufactured-value-sequence ablation).

    Configuration keys
    ------------------
    ``config_text``
        The ``~/.mc/ini`` analogue parsed during start-up.  Any blank line in
        it triggers the §4.5.4 benign error.
    ``vfs_files``
        Mapping of path to contents used to pre-populate the simulated VFS.
    """

    name = "midnight-commander"

    # -- lifecycle -----------------------------------------------------------------

    def startup(self) -> None:
        self.vfs = SimulatedVfs()
        self.vfs.add_directory("/home/user")
        for path, content in dict(self.config.get("vfs_files", {})).items():
            self.vfs.add_file(path, content)
        config_text = str(self.config.get("config_text", DEFAULT_CONFIG_TEXT))
        self.settings = self._parse_config(config_text)

    def handle(self, request: Request) -> Response:
        handlers = {
            "open_archive": self._handle_open_archive,
            "copy": self._handle_copy,
            "move": self._handle_move,
            "mkdir": self._handle_mkdir,
            "delete": self._handle_delete,
            "find_component": self._handle_find_component,
        }
        handler = handlers.get(request.kind)
        if handler is None:
            raise ServerError(f"unknown midnight commander request kind {request.kind!r}")
        return handler(request)

    # -- configuration parsing (blank-line error, §4.5.4) -------------------------------

    def _parse_config(self, text: str) -> Dict[str, str]:
        """Parse the ini file, committing a one-byte under-read for blank lines."""
        ctx = self.ctx
        mem = ctx.mem
        ctx.set_site("mc.load_setup")
        settings: Dict[str, str] = {}
        for raw_line in text.splitlines():
            line_bytes = raw_line.encode()
            buf = ctx.malloc(len(line_bytes) + 1, name="ini_line")
            write_c_string(mem, buf, line_bytes)
            # Trim trailing whitespace by scanning backwards from the last
            # character.  For a blank line the first probe reads buf[-1],
            # one byte before the start of the allocation.
            end = len(line_bytes)
            while True:
                probe = mem.read_byte(buf + (end - 1))
                if probe not in (ord(" "), ord("\t")) or end < 0:
                    break
                end -= 1
            trimmed = line_bytes[:max(end, 0)]
            ctx.free(buf)
            if not trimmed or trimmed.startswith(b"[") or trimmed.startswith(b"#"):
                continue
            if b"=" in trimmed:
                key, value = trimmed.split(b"=", 1)
                settings[key.decode()] = value.decode()
        ctx.set_site("")
        return settings

    # -- archive browsing (the vulnerable path, §4.5.1) ----------------------------------

    def _handle_open_archive(self, request: Request) -> Response:
        entries: List[ArchiveEntry] = list(request.payload.get("entries", []))
        listing = self._process_archive(entries)
        return Response.ok(body="\n".join(listing).encode(), detail=f"{len(entries)} entries")

    def _process_archive(self, entries: List[ArchiveEntry]) -> List[str]:
        """Convert absolute symlinks to archive-relative links via ``strcat``.

        The link-name buffer below is allocated once for the whole archive and
        never initialized or reset between links, so component names
        accumulate — the documented bug.
        """
        ctx = self.ctx
        mem = ctx.mem
        ctx.set_site("mc.vfs_s_resolve_symlink")
        listing: List[str] = []
        with ctx.stack_frame("tgz_open_archive"):
            linkname = ctx.stack_buffer("linkname", LINKNAME_BUFFER_SIZE)
            ctx.seal_frame()
            for entry in entries:
                if not entry.is_symlink:
                    listing.append(f"{entry.name} ({len(entry.content)} bytes)")
                    continue
                if entry.target.startswith("/"):
                    components = [c for c in entry.target.split("/") if c]
                    for component in components:
                        fragment = ctx.alloc_c_string(
                            b"../" + component.encode(), name="link_component"
                        )
                        strcat(mem, linkname, fragment)
                        ctx.free(fragment)
                # Look up the data for the referenced file.  This always fails
                # (even for the first link), which Midnight Commander treats as
                # an anticipated dangling link (§4.5.2).
                resolved = bytes(mem.read(linkname, min(LINKNAME_BUFFER_SIZE, 64)))
                resolved_name = resolved.split(b"\x00", 1)[0].decode("latin-1")
                if not self.vfs.exists(resolved_name):
                    listing.append(f"{entry.name} -> {entry.target} (dangling)")
                else:  # pragma: no cover - the lookup is documented to always fail
                    listing.append(f"{entry.name} -> {entry.target}")
        ctx.set_site("")
        return listing

    # -- the §3 "/" search loop -----------------------------------------------------------

    def _handle_find_component(self, request: Request) -> Response:
        name = str(request.payload.get("name", ""))
        offset = self._find_slash_past_end(name.encode())
        return Response.ok(detail=f"separator at offset {offset}")

    def _find_slash_past_end(self, name: bytes) -> int:
        """Scan forward from the start of ``name`` until a ``/`` is found.

        For names that contain no ``/`` the scan runs past the end of the
        buffer.  Under failure-oblivious execution the loop terminates only
        because the manufactured value sequence eventually produces the byte
        value of ``/`` (§3); a degenerate all-zero sequence hangs, which the
        iteration budget converts into an observable
        :class:`~repro.errors.InfiniteLoopGuard`.
        """
        ctx = self.ctx
        mem = ctx.mem
        ctx.set_site("mc.find_slash")
        buf = ctx.alloc_c_string(name, name="path_component")
        offset = 0
        try:
            while True:
                if offset > SLASH_SCAN_LIMIT:
                    raise InfiniteLoopGuard(
                        f"/ search scanned {SLASH_SCAN_LIMIT} bytes without finding a separator"
                    )
                if mem.read_byte(buf + offset) == ord("/"):
                    return offset
                offset += 1
        finally:
            ctx.free(buf)
            ctx.set_site("")

    # -- file management requests (the Figure 5 workload) -----------------------------------

    def _handle_copy(self, request: Request) -> Response:
        source = str(request.payload["source"])
        target = str(request.payload["target"])
        copied = 0
        if source in self.vfs.files:
            copied += self._copy_file(source, target)
        else:
            if not self.vfs.exists(source):
                raise ServerError(f"no such file or directory {source!r}")
            self.vfs.add_directory(target)
            for path in self.vfs.tree(source):
                relative = path[len(source):].lstrip("/")
                copied += self._copy_file(path, f"{target.rstrip('/')}/{relative}")
        return Response.ok(detail=f"copied {copied} bytes")

    def _copy_file(self, source: str, target: str) -> int:
        """Copy one file through the simulated copy buffer in chunks."""
        ctx = self.ctx
        ctx.set_site("mc.copy_file")
        content = self.vfs.files[source]
        buf = ctx.malloc(COPY_CHUNK, name="copy_buffer")
        out = bytearray()
        for start in range(0, len(content), COPY_CHUNK):
            chunk = content[start : start + COPY_CHUNK]
            ctx.mem.write(buf, chunk)
            out += ctx.mem.read(buf, len(chunk))
        ctx.free(buf)
        self.vfs.add_file(target, bytes(out))
        ctx.set_site("")
        return len(content)

    def _handle_move(self, request: Request) -> Response:
        source = str(request.payload["source"])
        target = str(request.payload["target"])
        if not self.vfs.exists(source):
            raise ServerError(f"no such file or directory {source!r}")
        moved_files = 0
        if source in self.vfs.files:
            self.vfs.files[target] = self.vfs.files.pop(source)
            moved_files = 1
        else:
            self.vfs.add_directory(target)
            for path in self.vfs.tree(source):
                relative = path[len(source):].lstrip("/")
                self.vfs.files[f"{target.rstrip('/')}/{relative}"] = self.vfs.files.pop(path)
                moved_files += 1
            self.vfs.directories.discard(source.rstrip("/"))
        self._record_operation(f"move {source} -> {target}")
        return Response.ok(detail=f"moved {moved_files} file(s)")

    def _handle_mkdir(self, request: Request) -> Response:
        path = str(request.payload["path"])
        if self.vfs.exists(path):
            raise ServerError(f"directory exists: {path}")
        self.vfs.add_directory(path)
        self._record_operation(f"mkdir {path}")
        return Response.ok(detail=f"created {path}")

    def _handle_delete(self, request: Request) -> Response:
        path = str(request.payload["path"])
        if path not in self.vfs.files:
            raise ServerError(f"no such file {path!r}")
        content = self.vfs.files.pop(path)
        # Deleting scans the directory entry name through a small buffer, the
        # analogue of the unlink path's metadata work.
        self._record_operation(f"delete {path} ({len(content)} bytes)")
        return Response.ok(detail=f"deleted {path}")

    def _record_operation(self, note: str) -> None:
        """Append an entry to the session log through simulated memory."""
        ctx = self.ctx
        ctx.set_site("mc.session_log")
        data = note.encode() + b"\n"
        buf = ctx.malloc(len(data) + 1, name="session_log_entry")
        cursor = buf
        for byte in data:
            ctx.mem.write_byte(cursor, byte)
            cursor = cursor + 1
        ctx.mem.write_byte(cursor, 0)
        ctx.free(buf)
        ctx.set_site("")


# ---------------------------------------------------------------------------
# Experiment profile (Figure 5 and §4.5.2)
# ---------------------------------------------------------------------------
# Workload builders are imported lazily: the workload modules import this
# module at import time (for the link-name buffer constant).

from repro.servers.profile import ServerProfile, register_profile  # noqa: E402


def _benchmark_config(scale: float) -> Dict[str, object]:
    from repro.workloads.benign import midnight_commander_vfs_files

    return {
        "vfs_files": midnight_commander_vfs_files(
            directory_bytes=int(2 * 1024 * 1024 * scale),
            file_count=16,
            delete_file_bytes=int(256 * 1024 * scale),
        )
    }


def _benign_request(kind: str, index: int) -> Request:
    from repro.workloads.benign import midnight_commander_requests

    return midnight_commander_requests(kind, 1, unique_suffix=index)[0]


def _attack_request() -> Request:
    from repro.workloads.attacks import midnight_commander_attack_request

    return midnight_commander_attack_request()


def _follow_ups() -> List[Request]:
    return [Request(kind="mkdir", payload={"path": "/home/user/after-attack"})]


def _restore_deleted_file(server: Server, index: int) -> None:
    server.vfs.add_file("/home/user/big-download.iso", b"\xab" * (64 * 1024))


def _ensure_move_source(server: Server, index: int) -> None:
    # The generated move requests alternate direction; make sure the expected
    # source directory exists even after a failed repetition.
    source = "/home/user/data" if index % 2 == 0 else "/home/user/data_moved"
    if not server.vfs.exists(source):
        other = "/home/user/data_moved" if index % 2 == 0 else "/home/user/data"
        for path in server.vfs.tree(other):
            relative = path[len(other):].lstrip("/")
            server.vfs.files[f"{source}/{relative}"] = server.vfs.files.pop(path)
        server.vfs.add_directory(source)


PROFILE = register_profile(
    ServerProfile(
        name="midnight-commander",
        server_cls=MidnightCommanderServer,
        figure_rows=("copy", "move", "mkdir", "delete"),
        figure_number=5,
        benchmark_config=_benchmark_config,
        request_factory=_benign_request,
        reset_hooks={"delete": _restore_deleted_file, "move": _ensure_move_source},
        attack_request=_attack_request,
        follow_ups=_follow_ups,
        description="Midnight Commander 4.5.55 tgz symlink strcat overflow (§4.5)",
    )
)
