"""Pine 4.44 and its From-field quoting heap overflow (paper §4.2).

When Pine builds the message index it copies each message's ``From`` field
into a heap-allocated display buffer, inserting a ``\\`` before every character
that needs quoting.  The routine that computes the buffer length fails to
account for the worst-case growth, so a ``From`` field containing many quoted
characters overflows the buffer.

Build behaviour reproduced here:

* Standard — the overflow corrupts the heap and Pine dies with a segmentation
  violation while loading the mail file, before the user can interact at all.
* Bounds Check — the first invalid store terminates Pine during
  initialization; the user cannot read any mail until the offending message is
  removed with some other tool.
* Failure Oblivious — the out-of-bounds stores are discarded (the displayed
  From field is truncated, invisibly, because the index only shows a prefix);
  selecting the message takes a different, correct code path, and the user can
  read, forward, and process all their mail (§4.2.2).
"""

from __future__ import annotations

from typing import Dict, List

from repro.servers.base import Request, Response, Server, ServerError

#: Characters Pine quotes in the From field when building the index display.
QUOTED_CHARS = frozenset(b'"\\()')

#: Number of quoted characters the buggy length estimate implicitly assumes.
#: The real bug is an incorrect worst-case formula; four slack bytes plays the
#: same role: ordinary From fields fit, heavily quoted ones overflow.
LENGTH_ESTIMATE_SLACK = 4

#: Width of the From column in the message index display.
INDEX_FROM_WIDTH = 20

#: Default mailbox used when the configuration does not supply one.
DEFAULT_MAILBOX: List[Dict[str, bytes]] = [
    {"from": b"alice@example.org", "subject": b"lunch", "body": b""},
    {"from": b'"Bob B." <bob@example.org>', "subject": b"report", "body": b"draft attached"},
    {"from": b"carol@example.org", "subject": b"hello", "body": b""},
]


class PineServer(Server):
    """The Pine mail user agent with the From-quoting bug.

    Request kinds
    -------------
    ``read``
        payload ``{"index": int}`` — display the selected message (the paper's
        *Read* request uses an empty message).
    ``compose``
        no payload — bring up the composition screen.
    ``move``
        payload ``{"index": int, "target": str}`` — move a message between
        folders (the paper's *Move* request moves an empty message).
    ``list``
        no payload — redisplay the message index (runs the vulnerable path
        again for every message).

    Configuration keys
    ------------------
    ``mailbox``
        List of message dicts (``from``/``subject``/``body`` bytes).  Putting a
        message whose From field has many quoted characters in here is the
        attack of §4.2.
    ``folders``
        Additional folder names (targets for ``move``).
    """

    name = "pine"

    # -- lifecycle -----------------------------------------------------------------

    def startup(self) -> None:
        """Load the mail file and build the message index (the vulnerable step)."""
        mailbox = self.config.get("mailbox", DEFAULT_MAILBOX)
        self.folders: Dict[str, List[Dict[str, bytes]]] = {
            "inbox": [dict(m) for m in mailbox],
        }
        for extra in self.config.get("folders", ["saved-messages"]):
            self.folders.setdefault(extra, [])
        self.index_lines: List[bytes] = []
        self._build_message_index()

    def handle(self, request: Request) -> Response:
        if request.kind == "read":
            return self._handle_read(request)
        if request.kind == "compose":
            return self._handle_compose(request)
        if request.kind == "move":
            return self._handle_move(request)
        if request.kind == "list":
            self._build_message_index()
            return Response.ok(body=b"\n".join(self.index_lines), detail="index rebuilt")
        raise ServerError(f"unknown pine request kind {request.kind!r}")

    # -- the vulnerable path: building the index display -----------------------------

    def _build_message_index(self) -> None:
        """Quote every From field into a display buffer (paper §4.2.1)."""
        self.index_lines = []
        for number, message in enumerate(self.folders["inbox"], start=1):
            display_from = self._quote_from_field(message["from"])
            line = b"%3d  %-*s  %s" % (
                number,
                INDEX_FROM_WIDTH,
                display_from[:INDEX_FROM_WIDTH],
                message["subject"],
            )
            self.index_lines.append(line)

    def _quote_from_field(self, from_field: bytes) -> bytes:
        """Copy the From field into an undersized heap buffer, quoting as it goes.

        The length estimate below is the bug: it assumes only a handful of
        characters will need quoting, whereas the safe worst case is
        ``2 * len(from_field) + 1``.
        """
        ctx = self.ctx
        ctx.set_site("pine.quote_from_field")
        source = ctx.alloc_c_string(from_field, name="from_field")
        estimated = len(from_field) + LENGTH_ESTIMATE_SLACK + 1
        display = ctx.malloc(estimated, name="from_display_buf")
        src = source
        dst = display
        while True:
            byte = ctx.mem.read_byte(src)
            if byte == 0:
                break
            if byte in QUOTED_CHARS:
                ctx.mem.write_byte(dst, ord("\\"))
                dst = dst + 1
            ctx.mem.write_byte(dst, byte)
            dst = dst + 1
            src = src + 1
        ctx.mem.write_byte(dst, 0)
        quoted = ctx.read_c_string(display)
        ctx.free(display)
        ctx.free(source)
        ctx.set_site("")
        return quoted

    def _quote_from_field_correct(self, from_field: bytes) -> bytes:
        """The correct translation used when a message is selected (§4.2.2)."""
        ctx = self.ctx
        ctx.set_site("pine.quote_from_field_correct")
        source = ctx.alloc_c_string(from_field, name="from_field")
        display = ctx.malloc(2 * len(from_field) + 1, name="from_display_full")
        src = source
        dst = display
        while True:
            byte = ctx.mem.read_byte(src)
            if byte == 0:
                break
            if byte in QUOTED_CHARS:
                ctx.mem.write_byte(dst, ord("\\"))
                dst = dst + 1
            ctx.mem.write_byte(dst, byte)
            dst = dst + 1
            src = src + 1
        ctx.mem.write_byte(dst, 0)
        quoted = ctx.read_c_string(display)
        ctx.free(display)
        ctx.free(source)
        ctx.set_site("")
        return quoted

    # -- benign request handlers (the Figure 2 workload) --------------------------------

    def _handle_read(self, request: Request) -> Response:
        index = int(request.payload.get("index", 0))
        inbox = self.folders["inbox"]
        if not 0 <= index < len(inbox):
            raise ServerError("no such message")
        message = inbox[index]
        # Selecting a message takes the correct translation path (§4.2.2).
        full_from = self._quote_from_field_correct(message["from"])
        body = message.get("body", b"")
        display = self._render_screen(
            [b"From: " + full_from, b"Subject: " + message["subject"], b"", body]
        )
        return Response.ok(body=display, detail="message displayed")

    def _handle_compose(self, request: Request) -> Response:
        template = [
            b"To      : ",
            b"Cc      : ",
            b"Attchmnt: ",
            b"Subject : ",
            b"----- Message Text -----",
            b"",
        ]
        display = self._render_screen(template)
        return Response.ok(body=display, detail="compose screen")

    def _handle_move(self, request: Request) -> Response:
        index = int(request.payload.get("index", 0))
        target = str(request.payload.get("target", "saved-messages"))
        inbox = self.folders["inbox"]
        if not 0 <= index < len(inbox):
            raise ServerError("no such message")
        if target not in self.folders:
            raise ServerError(f"no such folder {target!r}")
        message = inbox.pop(index)
        # Folder writes append the message through a small simulated buffer,
        # the analogue of writing it to the folder file.
        serialized = (
            b"From: " + message["from"] + b"\nSubject: " + message["subject"] + b"\n\n"
            + message.get("body", b"") + b"\n"
        )
        self._spool_bytes(serialized)
        self.folders[target].append(message)
        self._build_message_index()
        return Response.ok(detail=f"moved message {index} to {target}")

    # -- display helpers -------------------------------------------------------------

    def _render_screen(self, lines: List[bytes]) -> bytes:
        """Assemble a screen image byte by byte through simulated memory."""
        ctx = self.ctx
        ctx.set_site("pine.render_screen")
        text = b"\n".join(lines) + b"\n"
        buf = ctx.malloc(len(text) + 1, name="screen_buffer")
        cursor = buf
        for byte in text:
            ctx.mem.write_byte(cursor, byte)
            cursor = cursor + 1
        ctx.mem.write_byte(cursor, 0)
        rendered = ctx.read_c_string(buf)
        ctx.free(buf)
        ctx.set_site("")
        return rendered

    def _spool_bytes(self, data: bytes) -> None:
        """Write folder data through a fixed-size spool buffer in chunks."""
        ctx = self.ctx
        ctx.set_site("pine.spool")
        spool = ctx.malloc(256, name="spool_buffer")
        for start in range(0, len(data), 256):
            chunk = data[start : start + 256]
            ctx.mem.write(spool, chunk)
        ctx.free(spool)
        ctx.set_site("")


# ---------------------------------------------------------------------------
# Experiment profile (Figure 2 and §4.2.2)
# ---------------------------------------------------------------------------
# The workload builders are imported lazily inside these functions because the
# workload modules import server modules at import time (for the documented
# buffer-size constants); a module-level import here would be circular.

from repro.servers.profile import ServerProfile, register_profile  # noqa: E402


def _benchmark_config(scale: float) -> Dict[str, object]:
    from repro.workloads.benign import pine_benchmark_mailbox

    return {"mailbox": pine_benchmark_mailbox(max(int(64 * scale), 32))}


def _benign_request(kind: str, index: int) -> Request:
    from repro.workloads.benign import pine_requests

    return pine_requests(kind, 1)[0]


def _attack_config() -> Dict[str, object]:
    from repro.workloads.attacks import pine_poisoned_mailbox

    return {"mailbox": pine_poisoned_mailbox()}


def _attack_request() -> Request:
    # The error trigger lives in the poisoned mailbox planted at boot;
    # re-listing the index runs the vulnerable quoting path over it again.
    return Request(kind="list", payload={}, is_attack=True)


def _follow_ups() -> List[Request]:
    return [Request(kind="read", payload={"index": 0}), Request(kind="compose")]


PROFILE = register_profile(
    ServerProfile(
        name="pine",
        server_cls=PineServer,
        figure_rows=("read", "compose", "move"),
        figure_number=2,
        benchmark_config=_benchmark_config,
        request_factory=_benign_request,
        attack_config=_attack_config,
        attack_request=_attack_request,
        follow_ups=_follow_ups,
        description="Pine 4.44 From-field quoting heap overflow (§4.2)",
    )
)
