"""Sendmail 8.11.6 and its prescan address-parsing stack overflow (paper §4.4).

The ``prescan`` procedure copies a mail address into a fixed-size
stack-allocated buffer one character at a time, treating ``\\`` specially and
using a lookahead character.  Through a sign-extension quirk, an address that
alternates the byte 0xFF (which becomes the integer -1) with ``\\`` characters
makes prescan skip the bounds check and write arbitrarily many ``\\``
characters beyond the end of the buffer.

Build behaviour reproduced here:

* Standard — the out-of-bounds writes corrupt the call stack; the process dies
  (the real error is known to be exploitable for code injection).
* Bounds Check — unusable: the daemon commits a *benign* memory error every
  time it wakes up to check for work (§4.4.4), so this build terminates during
  initialization before it can process anything.
* Failure Oblivious — the out-of-bounds writes are discarded, prescan returns,
  the following "address too long" check fails, Sendmail's standard error
  logic rejects the address (550), and the daemon continues with the next
  command.
"""

from __future__ import annotations

from typing import Dict, List

from repro.servers.base import Request, Response, Server, ServerError

#: Size of prescan's stack buffer.  The real MAXNAME is larger; what matters
#: for the reproduction is that legitimate addresses fit and the crafted
#: ``\\``/0xFF sequence does not.
PRESCAN_BUFFER_SIZE = 64

#: Size of the line buffer used when spooling message bodies.
SPOOL_CHUNK = 128


class SendmailServer(Server):
    """The Sendmail mail transfer agent with the prescan bug.

    Request kinds
    -------------
    ``receive``
        payload ``{"sender": bytes, "recipient": bytes, "body": bytes}`` — a
        remote agent delivers a message to a local user (the paper's *Receive*
        requests).
    ``send``
        payload ``{"sender": bytes, "recipient": bytes, "body": bytes}`` — a
        local user submits a message for onward delivery (*Send* requests).
    ``wakeup``
        no payload — the daemon wakes up to check for queued work; this is the
        operation that commits a benign memory error on every execution.

    Configuration keys
    ------------------
    ``local_users``
        Recipient local parts accepted for delivery.
    ``wakeup_before_requests``
        If True (default), every receive/send is preceded by a daemon wake-up,
        reproducing the steady stream of benign errors seen in §4.4.4.
    """

    name = "sendmail"

    # -- lifecycle -----------------------------------------------------------------

    def startup(self) -> None:
        self.local_users = set(self.config.get("local_users", [b"root", b"postmaster", b"user"]))
        self.wakeup_before_requests = bool(self.config.get("wakeup_before_requests", True))
        self.delivered: List[Dict[str, bytes]] = []
        self.queued: List[Dict[str, bytes]] = []
        self.rejected = 0
        # The daemon performs an initial queue check as it starts; this is the
        # benign error that disables the Bounds Check build (§4.4.4).
        self._daemon_wakeup()

    def handle(self, request: Request) -> Response:
        if request.kind == "wakeup":
            self._daemon_wakeup()
            return Response.ok(detail="queue checked")
        if request.kind == "receive":
            return self._handle_transfer(request, direction="receive")
        if request.kind == "send":
            return self._handle_transfer(request, direction="send")
        raise ServerError(f"unknown sendmail request kind {request.kind!r}")

    # -- the benign wake-up error (§4.4.4) ----------------------------------------------

    def _daemon_wakeup(self) -> None:
        """Check the work queue, committing a one-byte out-of-bounds read.

        The queue-directory scan keeps a small buffer of flag characters and
        reads one element past its end when the queue is empty — a harmless
        error under the Standard build, a fatal one under Bounds Check, and a
        logged-and-ignored one under Failure Oblivious.
        """
        ctx = self.ctx
        ctx.set_site("sendmail.daemon_wakeup")
        flags = ctx.malloc(4, name="queue_flags")
        for i in range(4):
            ctx.mem.write_byte(flags + i, ord("."))
        # Off-by-one scan: <= instead of < walks one byte past the buffer.
        seen = []
        for i in range(4 + 1):
            seen.append(ctx.mem.read_byte(flags + i))
        ctx.free(flags)
        ctx.set_site("")

    # -- message transfer ------------------------------------------------------------

    def _handle_transfer(self, request: Request, direction: str) -> Response:
        if self.wakeup_before_requests:
            self._daemon_wakeup()
        sender = request.payload.get("sender", b"")
        recipient = request.payload.get("recipient", b"")
        body = request.payload.get("body", b"")
        parsed_sender = self._parse_address(sender)
        parsed_recipient = self._parse_address(recipient)
        if direction == "receive":
            local_part = parsed_recipient.split(b"@", 1)[0]
            if local_part not in self.local_users:
                raise ServerError(f"550 unknown user {local_part!r}")
            spooled = self._spool_body(body)
            self.delivered.append(
                {"from": parsed_sender, "to": parsed_recipient, "body": spooled}
            )
            return Response.ok(detail=f"delivered to {local_part.decode()!r}")
        spooled = self._spool_body(body)
        self.queued.append({"from": parsed_sender, "to": parsed_recipient, "body": spooled})
        return Response.ok(detail="queued for relay")

    def _parse_address(self, address: bytes) -> bytes:
        """Parse an address via prescan, then apply the length check (§4.4.2)."""
        parsed, attempted_length = self._prescan(address)
        if attempted_length >= PRESCAN_BUFFER_SIZE:
            # The anticipated error case the failure-oblivious build lands in:
            # Sendmail's standard error processing rejects the address.
            self.rejected += 1
            raise ServerError("553 address too long")
        if not parsed:
            self.rejected += 1
            raise ServerError("553 malformed address")
        return parsed

    def _prescan(self, address: bytes) -> tuple:
        """The vulnerable copy loop: returns (parsed address, attempted length).

        The loop mirrors the structure described in §4.4.1: a lookahead
        character, special treatment of ``\\``, and a path that skips both the
        store of the lookahead character *and* its bounds check, later storing
        a ``\\`` without any check.
        """
        ctx = self.ctx
        mem = ctx.mem
        ctx.set_site("sendmail.prescan")
        source = ctx.alloc_c_string(address, name="addr_input")
        with ctx.stack_frame("prescan"):
            buf = ctx.stack_buffer("pvpbuf", PRESCAN_BUFFER_SIZE)
            ctx.seal_frame()
            write_offset = 0
            attempted_length = 0
            read_index = 0
            length = len(address)
            backslash_run = 0
            while read_index < length:
                raw = mem.read_byte(source + read_index)
                read_index += 1
                attempted_length += 1
                # Sign extension of a char assigned to an int: 0xFF becomes -1,
                # the "no lookahead character" sentinel.
                lookahead = raw - 256 if raw >= 0x80 else raw
                if lookahead == ord("\\"):
                    backslash_run += 1
                else:
                    backslash_run = 0
                skips_check = lookahead == -1 or (
                    lookahead == ord("\\") and backslash_run % 2 == 1
                )
                if skips_check:
                    # The buggy path: the block that stores the lookahead
                    # character (and checks the buffer bound) is skipped, and a
                    # ``\\`` is stored without any check.
                    mem.write_byte(buf + write_offset, ord("\\"))
                    write_offset += 1
                    continue
                if write_offset >= PRESCAN_BUFFER_SIZE - 1:
                    # The legitimate bounds check on the normal path refuses
                    # the store but keeps scanning the rest of the address.
                    continue
                mem.write_byte(buf + write_offset, raw)
                write_offset += 1
            terminator_offset = min(write_offset, PRESCAN_BUFFER_SIZE - 1)
            mem.write_byte(buf + terminator_offset, 0)
            parsed = bytes(
                mem.read(buf, terminator_offset)
            ) if terminator_offset > 0 else b""
        ctx.free(source)
        ctx.set_site("")
        return parsed, max(attempted_length, write_offset)

    def _spool_body(self, body: bytes) -> bytes:
        """Copy the message body through a fixed spool buffer, line style.

        This is the per-byte work that dominates the request processing time
        and produces the roughly 4x slowdown of Figure 4.
        """
        ctx = self.ctx
        mem = ctx.mem
        ctx.set_site("sendmail.spool_body")
        chunk_buf = ctx.malloc(SPOOL_CHUNK, name="spool_chunk")
        out = bytearray()
        for start in range(0, len(body), SPOOL_CHUNK - 1):
            chunk = body[start : start + SPOOL_CHUNK - 1]
            cursor = chunk_buf
            for byte in chunk:
                mem.write_byte(cursor, byte)
                cursor = cursor + 1
            mem.write_byte(cursor, 0)
            out += ctx.read_c_string(chunk_buf)
        ctx.free(chunk_buf)
        ctx.set_site("")
        return bytes(out)


# ---------------------------------------------------------------------------
# Experiment profile (Figure 4 and §4.4.2)
# ---------------------------------------------------------------------------
# Workload builders are imported lazily: the workload modules import this
# module at import time (for the prescan buffer constant).

from repro.servers.profile import ServerProfile, register_profile  # noqa: E402


def _benign_request(kind: str, index: int) -> Request:
    from repro.workloads.benign import sendmail_requests

    return sendmail_requests(kind, 1)[0]


def _attack_request() -> Request:
    from repro.workloads.attacks import sendmail_attack_request

    return sendmail_attack_request()


def _follow_ups() -> List[Request]:
    from repro.workloads.benign import sendmail_requests

    return sendmail_requests("recv_small", 1)


PROFILE = register_profile(
    ServerProfile(
        name="sendmail",
        server_cls=SendmailServer,
        figure_rows=("recv_small", "recv_large", "send_small", "send_large"),
        figure_number=4,
        request_factory=_benign_request,
        # The attack arrives entirely in the request; no configuration change
        # is needed to plant the trigger.
        attack_request=_attack_request,
        follow_ups=_follow_ups,
        description="Sendmail 8.11.6 prescan address-parsing stack overflow (§4.4)",
    )
)
