"""Server lifecycle shared by every reimplemented server.

The paper evaluates each server by feeding it a workload of requests and
observing whether it crashes, terminates, is exploited, or keeps serving its
users.  This module provides that skeleton:

* :class:`Request` / :class:`Response` — the interaction units.  The paper's
  servers all follow the same simple interaction sequence ("read a request,
  process the request without further interaction, then return the response",
  §1.2), which is what makes their control-flow error propagation distance
  short.
* :class:`Server` — the lifecycle: construct with a *policy factory* (choosing
  a policy is the analogue of choosing a compiler), :meth:`Server.start` runs
  the initialization that several servers crash in, :meth:`Server.process`
  handles one request and classifies the outcome, :meth:`Server.restart`
  models killing and relaunching the process.
* :class:`ServerError` — an *anticipated* error: the server's own
  error-handling logic rejected the input.  The paper's central observation is
  that failure-oblivious execution often converts attacks into exactly these.
"""

from __future__ import annotations

import itertools
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.policy import AccessPolicy
from repro.errors import (
    BoundsCheckViolation,
    ControlFlowHijack,
    DoubleFree,
    HeapCorruption,
    InfiniteLoopGuard,
    RequestOutcome,
    RequestResult,
    SegmentationFault,
    UseAfterFree,
)
from repro.memory.context import MemoryContext
from repro.telemetry.events import RequestEnd, RequestStart
from repro.telemetry.sinks import Sink

_request_ids = itertools.count(1)


@dataclass
class Request:
    """One unit of work submitted to a server.

    ``kind`` selects the operation (server specific, e.g. ``"read"`` or
    ``"rewrite"``); ``payload`` carries its arguments; ``is_attack`` marks
    requests built by the attack generators so reports can separate attack and
    legitimate traffic.
    """

    kind: str
    payload: Dict[str, object] = field(default_factory=dict)
    is_attack: bool = False
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def describe(self) -> str:
        """Short label used in reports."""
        tag = " [attack]" if self.is_attack else ""
        return f"{self.kind}#{self.request_id}{tag}"


@dataclass
class Response:
    """The server's answer to one request."""

    status: str
    body: bytes = b""
    detail: str = ""

    @classmethod
    def ok(cls, body: bytes = b"", detail: str = "") -> "Response":
        """A successful response."""
        return cls(status="ok", body=body, detail=detail)

    @classmethod
    def error(cls, detail: str) -> "Response":
        """An anticipated error response produced by the server's own logic."""
        return cls(status="error", detail=detail)

    @property
    def is_ok(self) -> bool:
        """True for successful responses."""
        return self.status == "ok"


class ServerError(Exception):
    """An anticipated error case handled by the server's own error logic.

    Raising this from a handler is equivalent to the server rejecting the
    request with an error message; the loop converts it into an error
    :class:`Response` and keeps the server alive.
    """


class Server(ABC):
    """Base class for the five reimplemented servers.

    Parameters
    ----------
    policy_factory:
        Zero-argument callable returning a fresh
        :class:`~repro.core.policy.AccessPolicy`.  A factory (rather than an
        instance) is required because restarting the server must produce a
        clean process image, including fresh policy state.
    config:
        Server specific configuration (mailbox contents, rewrite rules,
        configuration file text, ...).  Defaults are chosen so that every
        server boots cleanly; the workload generators override entries to
        plant the documented error triggers.
    heap_size / stack_size:
        Simulated segment sizes, forwarded to the memory context.
    """

    #: Human readable server name, overridden by subclasses.
    name: str = "abstract"

    def __init__(
        self,
        policy_factory: Callable[[], AccessPolicy],
        config: Optional[Dict[str, object]] = None,
        heap_size: int = 4 * 1024 * 1024,
        stack_size: int = 256 * 1024,
    ) -> None:
        self.policy_factory = policy_factory
        self.config: Dict[str, object] = dict(config or {})
        self._heap_size = heap_size
        self._stack_size = stack_size
        self.policy: AccessPolicy = policy_factory()
        self.ctx = MemoryContext(
            self.policy, heap_size=heap_size, stack_size=stack_size
        )
        self.alive = True
        self.started = False
        self.requests_processed = 0
        self.restarts = 0
        self.history: List[RequestResult] = []
        #: Experiment-attached telemetry sinks, re-attached across restarts so
        #: an aggregator observes the server's whole lifetime, not one process
        #: image (the bus itself is per-image: a restart makes a fresh one).
        self._telemetry_sinks: List[Sink] = []
        self._wire_telemetry()

    def _wire_telemetry(self) -> None:
        """Label the fresh context's bus and re-attach persistent sinks."""
        bus = self.ctx.bus
        bus.scope.setdefault("server", self.name)
        for sink in self._telemetry_sinks:
            bus.attach(sink)

    def add_telemetry_sink(self, sink: Sink) -> Sink:
        """Attach a sink to this server's event stream, surviving restarts."""
        self._telemetry_sinks.append(sink)
        self.ctx.bus.attach(sink)
        return sink

    # -- subclass hooks -----------------------------------------------------------

    @abstractmethod
    def startup(self) -> None:
        """Run process initialization (load mailbox / config / rules).

        Several of the paper's servers commit their memory error here, which
        is why the Bounds Check builds of Pine, Mutt, and Midnight Commander
        die before the user interface even appears.
        """

    @abstractmethod
    def handle(self, request: Request) -> Response:
        """Process one request.  May raise :class:`ServerError` for anticipated errors."""

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> RequestResult:
        """Boot the server, classifying any fault hit during initialization."""
        result = self._execute(Request(kind="__startup__"), lambda _req: self._run_startup())
        self.started = not result.fatal
        return result

    def _run_startup(self) -> Response:
        self.startup()
        return Response.ok(detail="started")

    def process(self, request: Request) -> RequestResult:
        """Handle one request, returning the classified outcome."""
        if not self.alive:
            result = RequestResult(
                outcome=RequestOutcome.CRASHED,
                response=None,
                error=RuntimeError(f"{self.name} is down"),
            )
            self.history.append(result)
            return result
        result = self._execute(request, self.handle)
        self.requests_processed += 1
        self.history.append(result)
        return result

    def stop(self) -> None:
        """Shut the server down (the orderly analogue of killing the process).

        Experiment code calls this once a measurement is finished so warm-up
        and per-cell servers do not linger as live processes for the rest of a
        run.  The memory context (and its error log) stays readable for
        post-mortem introspection; processing further requests is refused the
        same way it is after a crash.  Stopping an already-dead server is a
        no-op.
        """
        self.alive = False
        self.started = False

    def restart(self) -> RequestResult:
        """Re-create the process image and boot again (the monitor/reboot model).

        Used by Apache's child pool and by the availability analysis to model
        the "detect the crash and restart" alternative the paper discusses.
        """
        self.restarts += 1
        self.policy = self.policy_factory()
        self.ctx = MemoryContext(
            self.policy, heap_size=self._heap_size, stack_size=self._stack_size
        )
        self._wire_telemetry()
        self.alive = True
        self.started = False
        return self.start()

    # -- execution / classification -------------------------------------------------

    def _execute(
        self,
        request: Request,
        handler: Callable[[Request], Response],
    ) -> RequestResult:
        ctx = self.ctx
        ctx.set_request(request.request_id)
        ctx.bus.emit(
            RequestStart(request_id=request.request_id, kind=request.kind,
                         is_attack=request.is_attack)
        )
        errors_before = ctx.error_log.total_recorded
        start_time = time.perf_counter()
        outcome: RequestOutcome
        response: Optional[Response] = None
        error: Optional[BaseException] = None
        try:
            response = handler(request)
            # Real heap corruption is usually discovered after the faulting
            # store, when the allocator next touches its metadata; model that
            # by walking the heap between requests.
            ctx.heap.verify_heap()
            outcome = (
                RequestOutcome.SERVED
                if response.is_ok
                else RequestOutcome.REJECTED_BY_ERROR_HANDLING
            )
        except ServerError as exc:
            response = Response.error(str(exc))
            outcome = RequestOutcome.REJECTED_BY_ERROR_HANDLING
        except (BoundsCheckViolation, UseAfterFree) as exc:
            error = exc
            outcome = RequestOutcome.TERMINATED_BY_CHECK
        except ControlFlowHijack as exc:
            error = exc
            outcome = RequestOutcome.EXPLOITED
        except (SegmentationFault, HeapCorruption, DoubleFree) as exc:
            error = exc
            outcome = RequestOutcome.CRASHED
        except InfiniteLoopGuard as exc:
            error = exc
            outcome = RequestOutcome.HUNG
        finally:
            elapsed = time.perf_counter() - start_time
            ctx.set_request(None)
        if outcome in (RequestOutcome.CRASHED, RequestOutcome.TERMINATED_BY_CHECK,
                       RequestOutcome.EXPLOITED, RequestOutcome.HUNG):
            self.alive = False
        new_errors = ctx.error_log.total_recorded - errors_before
        new_events = ctx.error_log.tail(new_errors) if new_errors > 0 else []
        site_counts: Dict[str, int] = {}
        for event in new_events:
            site_counts[event.site] = site_counts.get(event.site, 0) + 1
        ctx.bus.emit(
            RequestEnd(
                request_id=request.request_id,
                kind=request.kind,
                outcome=outcome.value,
                is_attack=request.is_attack,
                elapsed_seconds=elapsed,
                memory_errors=len(new_events),
                error_sites=tuple(site_counts.items()),
            )
        )
        return RequestResult(
            outcome=outcome,
            response=response,
            error=error,
            memory_errors=list(new_events),
            elapsed_seconds=elapsed,
        )

    # -- introspection ------------------------------------------------------------

    def memory_error_count(self) -> int:
        """Total memory errors attempted over the server's lifetime."""
        return self.ctx.error_log.total_recorded

    def describe(self) -> str:
        """One-line description used in reports."""
        return f"{self.name} [{self.policy.name}]"
