"""Server lifecycle shared by every reimplemented server.

The paper evaluates each server by feeding it a workload of requests and
observing whether it crashes, terminates, is exploited, or keeps serving its
users.  This module provides that skeleton:

* :class:`Request` / :class:`Response` — the interaction units.  The paper's
  servers all follow the same simple interaction sequence ("read a request,
  process the request without further interaction, then return the response",
  §1.2), which is what makes their control-flow error propagation distance
  short.
* :class:`Server` — the lifecycle: construct with a *policy factory* (choosing
  a policy is the analogue of choosing a compiler), :meth:`Server.start` runs
  the initialization that several servers crash in, :meth:`Server.process`
  handles one request and classifies the outcome, :meth:`Server.restart`
  models killing and relaunching the process.
* :class:`ServerError` — an *anticipated* error: the server's own
  error-handling logic rejected the input.  The paper's central observation is
  that failure-oblivious execution often converts attacks into exactly these.
"""

from __future__ import annotations

import copy
import itertools
import time
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.policy import AccessPolicy
from repro.errors import (
    BoundsCheckViolation,
    ControlFlowHijack,
    DoubleFree,
    HeapCorruption,
    InfiniteLoopGuard,
    RequestOutcome,
    RequestResult,
    SegmentationFault,
    UseAfterFree,
)
from repro.memory.context import MemoryContext, MemoryImage
from repro.telemetry.events import RequestEnd, RequestStart
from repro.telemetry.session import current_session
from repro.telemetry.sinks import ListSink, Sink

_request_ids = itertools.count(1)


@dataclass
class Request:
    """One unit of work submitted to a server.

    ``kind`` selects the operation (server specific, e.g. ``"read"`` or
    ``"rewrite"``); ``payload`` carries its arguments; ``is_attack`` marks
    requests built by the attack generators so reports can separate attack and
    legitimate traffic.
    """

    kind: str
    payload: Dict[str, object] = field(default_factory=dict)
    is_attack: bool = False
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def describe(self) -> str:
        """Short label used in reports."""
        tag = " [attack]" if self.is_attack else ""
        return f"{self.kind}#{self.request_id}{tag}"


@dataclass
class Response:
    """The server's answer to one request."""

    status: str
    body: bytes = b""
    detail: str = ""

    @classmethod
    def ok(cls, body: bytes = b"", detail: str = "") -> "Response":
        """A successful response."""
        return cls(status="ok", body=body, detail=detail)

    @classmethod
    def error(cls, detail: str) -> "Response":
        """An anticipated error response produced by the server's own logic."""
        return cls(status="error", detail=detail)

    @property
    def is_ok(self) -> bool:
        """True for successful responses."""
        return self.status == "ok"


class ServerError(Exception):
    """An anticipated error case handled by the server's own error logic.

    Raising this from a handler is equivalent to the server rejecting the
    request with an error message; the loop converts it into an error
    :class:`Response` and keeps the server alive.
    """


def bounded_history_limit(
    limit: Optional[int],
    allow_unbounded: bool = False,
    harness: str = "this harness",
) -> Optional[int]:
    """Validate a soak-scale harness's per-request history bound.

    The per-request :attr:`Server.history` is unbounded by default (short
    experiment runs read it wholesale), which is exactly wrong for a
    10^6-request soak or fleet run: one retained
    :class:`~repro.errors.RequestResult` per request is an unbounded leak.
    The long-running harnesses therefore refuse ``limit=None`` unless the
    caller opts in explicitly with ``allow_unbounded=True``.

    Returns the validated limit (as an ``int``, or ``None`` when unbounded
    was explicitly allowed); raises :class:`ValueError` otherwise.
    """
    if limit is None:
        if allow_unbounded:
            return None
        raise ValueError(
            f"{harness} refuses an unbounded per-request history: a soak-scale "
            "run would retain one RequestResult per request forever. Pass a "
            "positive history_limit, or allow_unbounded_history=True to opt "
            "in explicitly."
        )
    limit = int(limit)
    if limit <= 0:
        raise ValueError(
            "history_limit must be positive (or None with "
            "allow_unbounded_history=True)"
        )
    return limit


@dataclass(frozen=True)
class ProcessImage:
    """The post-boot checkpoint a server restarts (and pre-forks) from.

    * ``ctx`` — the pure-data memory-substrate checkpoint (segments, object
      table, allocator, stack, policy side state including the error log).
    * ``state`` — a deep copy of the server-subclass attributes ``startup()``
      and the handlers established (parsed configuration, folder contents,
      ...).  Restores hand out fresh deep copies, so one image can seed many
      children without sharing mutable state.
    * ``boot_result`` — the classified boot outcome, replayed by restarts.
    * ``boot_events`` — every telemetry event the boot emitted, replayed to
      external observers on restore so the event stream is indistinguishable
      from a from-scratch reboot's.

    Pure data end to end: images cross ``fork`` boundaries and restore into
    any server of the same class and configuration.
    """

    ctx: MemoryImage
    state: Dict[str, object]
    boot_result: RequestResult
    boot_events: Tuple[object, ...]


class Server(ABC):
    """Base class for the five reimplemented servers.

    Parameters
    ----------
    policy_factory:
        Zero-argument callable returning a fresh
        :class:`~repro.core.policy.AccessPolicy`.  A factory (rather than an
        instance) is required because restarting the server must produce a
        clean process image, including fresh policy state.
    config:
        Server specific configuration (mailbox contents, rewrite rules,
        configuration file text, ...).  Defaults are chosen so that every
        server boots cleanly; the workload generators override entries to
        plant the documented error triggers.
    heap_size / stack_size:
        Simulated segment sizes, forwarded to the memory context.
    """

    #: Human readable server name, overridden by subclasses.
    name: str = "abstract"

    #: Whether :meth:`restart` may restore the post-boot checkpoint.  The
    #: image-replay model assumes ``startup()`` is a deterministic function of
    #: the configuration and the fresh substrate — true for every server in
    #: the paper (their boot triggers live in mailboxes and config files, not
    #: in mutable external state).  A subclass whose boot mutates its
    #: environment (so consecutive boots differ) sets this False to keep the
    #: rebuild-and-reboot behaviour.
    checkpoint_restarts: bool = True

    #: Base-class bookkeeping that is *not* part of the process image: the
    #: image captures only the state ``startup()`` and the request handlers
    #: establish.  Everything listed here survives restarts unchanged (or is
    #: the restart machinery itself).
    _IMAGE_EXCLUDED_FIELDS = frozenset({
        "policy_factory", "config", "_heap_size", "_stack_size", "policy",
        "ctx", "alive", "started", "requests_processed", "restarts",
        "history", "_telemetry_sinks", "_image", "fault_hook",
    })

    #: Optional fault-injection hook, called as ``hook(server, request,
    #: point)`` with ``point`` in ``{"before", "after"}`` around each
    #: request's handler, inside the classification ``try`` — anything it
    #: raises is classified exactly like a handler fault.  Installed by the
    #: recovery layer's :class:`~repro.recovery.faults.FaultInjector`; not
    #: part of the process image (it is harness machinery, like the sinks).
    fault_hook: Optional[Callable[["Server", Request, str], None]] = None

    def __init__(
        self,
        policy_factory: Callable[[], AccessPolicy],
        config: Optional[Dict[str, object]] = None,
        heap_size: int = 4 * 1024 * 1024,
        stack_size: int = 256 * 1024,
        history_limit: Optional[int] = None,
    ) -> None:
        self.policy_factory = policy_factory
        self.config: Dict[str, object] = dict(config or {})
        self._heap_size = heap_size
        self._stack_size = stack_size
        self.policy: AccessPolicy = policy_factory()
        self.ctx = MemoryContext(
            self.policy, heap_size=heap_size, stack_size=stack_size
        )
        self.alive = True
        self.started = False
        self.requests_processed = 0
        self.restarts = 0
        #: Per-request results, newest last.  Unbounded by default (short
        #: experiment runs read it wholesale); soak harnesses cap it via
        #: ``history_limit`` / :meth:`limit_history` so a million-request run
        #: does not retain one RequestResult per request forever.
        self.history: Deque[RequestResult] = deque(maxlen=history_limit)
        #: The post-boot process image; captured by :meth:`start`, restored by
        #: :meth:`restart`.
        self._image: Optional[ProcessImage] = None
        #: Experiment-attached telemetry sinks, re-attached across restarts so
        #: an aggregator observes the server's whole lifetime, not one process
        #: image (a from-scratch reboot makes a fresh bus).
        self._telemetry_sinks: List[Sink] = []
        self._wire_telemetry()

    def _wire_telemetry(self) -> None:
        """Label the fresh context's bus and re-attach persistent sinks."""
        bus = self.ctx.bus
        bus.scope.setdefault("server", self.name)
        for sink in self._telemetry_sinks:
            bus.attach(sink)

    def add_telemetry_sink(self, sink: Sink) -> Sink:
        """Attach a sink to this server's event stream, surviving restarts."""
        self._telemetry_sinks.append(sink)
        self.ctx.bus.attach(sink)
        return sink

    def limit_history(self, limit: Optional[int]) -> None:
        """Bound the per-request history to the newest ``limit`` results.

        ``None`` removes the bound.  The retained tail is preserved; soak
        harnesses call this before a long run so memory stays O(limit).
        """
        self.history = deque(self.history, maxlen=limit)

    # -- subclass hooks -----------------------------------------------------------

    @abstractmethod
    def startup(self) -> None:
        """Run process initialization (load mailbox / config / rules).

        Several of the paper's servers commit their memory error here, which
        is why the Bounds Check builds of Pine, Mutt, and Midnight Commander
        die before the user interface even appears.
        """

    @abstractmethod
    def handle(self, request: Request) -> Response:
        """Process one request.  May raise :class:`ServerError` for anticipated errors."""

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> RequestResult:
        """Boot the server, classifying any fault hit during initialization.

        The post-boot process image — memory substrate, error log, the
        subclass state ``startup()`` built, the boot's telemetry stream, and
        the classified boot result — is captured as a checkpoint, so every
        later :meth:`restart` is a restore instead of a rebuild-and-reboot.
        Fatal boots are captured too: restarting a server whose trigger lives
        in its configuration replays the same fatal boot, exactly as
        re-running ``startup()`` would.

        Servers with ``checkpoint_restarts`` False skip the capture entirely
        (it could never be restored), which also keeps the pre-checkpoint
        cost model honest: the benchmark baselines that boot with the flag
        off pay exactly what the pre-checkpoint code paid.
        """
        if not self.checkpoint_restarts:
            result = self._execute(
                Request(kind="__startup__"), lambda _req: self._run_startup()
            )
            self.started = not result.fatal
            return result
        recorder = ListSink()
        self.ctx.bus.attach(recorder)
        try:
            result = self._execute(
                Request(kind="__startup__"), lambda _req: self._run_startup()
            )
        finally:
            self.ctx.bus.detach(recorder)
        self.started = not result.fatal
        self._image = ProcessImage(
            ctx=self.ctx.checkpoint(),
            state=self._capture_state(),
            boot_result=result,
            boot_events=tuple(recorder.events),
        )
        return result

    def _run_startup(self) -> Response:
        self.startup()
        return Response.ok(detail="started")

    def recheckpoint(self) -> ProcessImage:
        """Re-capture the restart checkpoint from the server's current state.

        :meth:`start` checkpoints the immediately-post-boot state; a harness
        that performs session setup after boot (the stability experiments'
        follow-up requests — e.g. Mutt re-opening the INBOX after the planted
        startup folder was rejected) can call this afterwards so that clones
        and monitor restarts restore the *serving* state, not the raw boot.
        The boot result and replayed boot telemetry are carried over from the
        original image: a restore still reads as "the process booted", and
        the setup requests are not replayed into observers' tallies.
        """
        if self._image is None or not self.checkpoint_restarts:
            raise RuntimeError(
                "recheckpoint requires a started server with checkpoints enabled"
            )
        self._image = ProcessImage(
            ctx=self.ctx.checkpoint(),
            state=self._capture_state(),
            boot_result=self._image.boot_result,
            boot_events=self._image.boot_events,
        )
        return self._image

    @property
    def boot_image(self) -> Optional[ProcessImage]:
        """The post-boot checkpoint (None until :meth:`start` has run)."""
        return self._image

    def _capture_state(self) -> Dict[str, object]:
        """Deep-copy the subclass attributes that belong to the process image."""
        return copy.deepcopy({
            key: value
            for key, value in self.__dict__.items()
            if key not in self._IMAGE_EXCLUDED_FIELDS
        })

    def capture_handler_state(self) -> Dict[str, object]:
        """Snapshot the subclass (handler) state as pure data.

        The handler-side counterpart of ``ctx.checkpoint()``: the recovery
        supervisor pairs one of these with each memory snapshot so a
        rollback restores the parsed-configuration/session attributes the
        handlers keep outside simulated memory, in lockstep with the memory
        bytes.  Deep-copied both ways, so captured states are immutable
        history.
        """
        return self._capture_state()

    def restore_handler_state(self, state: Dict[str, object]) -> None:
        """Reinstate a :meth:`capture_handler_state` snapshot.

        Drops subclass attributes added since the capture, then installs
        fresh deep copies of the captured ones (the snapshot stays pristine
        however many times it is restored).  Lifecycle bookkeeping and
        harness wiring (the ``_IMAGE_EXCLUDED_FIELDS``) are untouched.
        """
        for key in list(self.__dict__):
            if key not in self._IMAGE_EXCLUDED_FIELDS and key not in state:
                del self.__dict__[key]
        self.__dict__.update(copy.deepcopy(state))

    def process(self, request: Request) -> RequestResult:
        """Handle one request, returning the classified outcome."""
        if not self.alive:
            result = RequestResult(
                outcome=RequestOutcome.CRASHED,
                response=None,
                error=RuntimeError(f"{self.name} is down"),
            )
            self.history.append(result)
            return result
        result = self._execute(request, self.handle)
        self.requests_processed += 1
        self.history.append(result)
        return result

    def stop(self) -> None:
        """Shut the server down (the orderly analogue of killing the process).

        Experiment code calls this once a measurement is finished so warm-up
        and per-cell servers do not linger as live processes for the rest of a
        run.  The memory context (and its error log) stays readable for
        post-mortem introspection; processing further requests is refused the
        same way it is after a crash.  Stopping an already-dead server is a
        no-op.
        """
        self.alive = False
        self.started = False

    def restart(self) -> RequestResult:
        """Bring the process back up after a death (the monitor/reboot model).

        Semantically this is "kill the process and boot a replacement".
        Operationally it restores the post-boot checkpoint captured by
        :meth:`start` — an O(dirty-bytes) memory restore plus a replay of the
        boot's telemetry — which is observably identical to re-constructing
        the substrate and re-running ``startup()`` (the restart-equivalence
        suite proves it for every server under every policy) but orders of
        magnitude cheaper.  Servers that have never booted fall back to
        :meth:`restart_from_scratch`.
        """
        if self._image is None or not self.checkpoint_restarts:
            return self.restart_from_scratch()
        self.restarts += 1
        return self._restore_image(self._image)

    def restart_from_scratch(self) -> RequestResult:
        """Re-create the process image and boot again, bypassing the checkpoint.

        The pre-checkpoint restart path, kept as the reference the
        equivalence suite and the restart benchmark compare against.  Also
        re-captures a fresh boot image, so later :meth:`restart` calls resume
        the cheap path.
        """
        self.restarts += 1
        self.policy = self.policy_factory()
        self.ctx = MemoryContext(
            self.policy, heap_size=self._heap_size, stack_size=self._stack_size
        )
        self._wire_telemetry()
        self.alive = True
        self.started = False
        return self.start()

    def adopt_image(self, image: ProcessImage) -> RequestResult:
        """Boot this (freshly constructed) server from another boot's image.

        The pre-fork clone operation: the template's post-boot checkpoint is
        restored into this server's own substrate, giving a process image
        identical to what this server's own ``start()`` would have produced —
        same memory bytes, same unit labels, same error log — without paying
        the boot.  The image becomes this server's restart checkpoint too.
        """
        self._image = image
        return self._restore_image(image)

    def _restore_image(self, image: ProcessImage) -> RequestResult:
        self.ctx.restore(image.ctx)
        # Drop subclass state added since boot, then reinstate the boot-time
        # snapshot (fresh deep copies: the image stays pristine, and clones
        # sharing one image share no mutable state).
        self.restore_handler_state(image.state)
        boot = image.boot_result
        self.alive = not boot.fatal
        self.started = not boot.fatal
        self._replay_boot_events(image)
        return RequestResult(
            outcome=boot.outcome,
            response=boot.response,
            error=boot.error,
            memory_errors=list(boot.memory_errors),
            elapsed_seconds=boot.elapsed_seconds,
        )

    def _replay_boot_events(self, image: ProcessImage) -> None:
        """Deliver the boot's event stream to external observers.

        The *internal* consumers (the error-log ring and counters, the
        policy's side-state sinks) were restored wholesale with the image;
        replaying into them would double-count.  Experiment sinks and any
        active JSONL export session, by contrast, observe the server across
        restarts, so they receive the same boot stream a from-scratch reboot
        would have emitted.
        """
        session = current_session()
        if not self._telemetry_sinks and session is None:
            return
        scope = self.ctx.bus.scope
        for event in image.boot_events:
            for sink in self._telemetry_sinks:
                sink.emit(event)
            if session is not None:
                session.write(event, scope)

    # -- execution / classification -------------------------------------------------

    def _execute(
        self,
        request: Request,
        handler: Callable[[Request], Response],
    ) -> RequestResult:
        ctx = self.ctx
        ctx.set_request(request.request_id)
        ctx.bus.emit(
            RequestStart(request_id=request.request_id, kind=request.kind,
                         is_attack=request.is_attack)
        )
        errors_before = ctx.error_log.total_recorded
        start_time = time.perf_counter()
        outcome: RequestOutcome
        response: Optional[Response] = None
        error: Optional[BaseException] = None
        try:
            if self.fault_hook is not None:
                self.fault_hook(self, request, "before")
            response = handler(request)
            # Real heap corruption is usually discovered after the faulting
            # store, when the allocator next touches its metadata; model that
            # by walking the heap between requests.
            ctx.heap.verify_heap()
            if self.fault_hook is not None:
                self.fault_hook(self, request, "after")
            outcome = (
                RequestOutcome.SERVED
                if response.is_ok
                else RequestOutcome.REJECTED_BY_ERROR_HANDLING
            )
        except ServerError as exc:
            response = Response.error(str(exc))
            outcome = RequestOutcome.REJECTED_BY_ERROR_HANDLING
        except (BoundsCheckViolation, UseAfterFree) as exc:
            error = exc
            outcome = RequestOutcome.TERMINATED_BY_CHECK
        except ControlFlowHijack as exc:
            error = exc
            outcome = RequestOutcome.EXPLOITED
        except (SegmentationFault, HeapCorruption, DoubleFree) as exc:
            error = exc
            outcome = RequestOutcome.CRASHED
        except InfiniteLoopGuard as exc:
            error = exc
            outcome = RequestOutcome.HUNG
        finally:
            elapsed = time.perf_counter() - start_time
            ctx.set_request(None)
        if outcome in (RequestOutcome.CRASHED, RequestOutcome.TERMINATED_BY_CHECK,
                       RequestOutcome.EXPLOITED, RequestOutcome.HUNG):
            self.alive = False
        new_errors = ctx.error_log.total_recorded - errors_before
        new_events = ctx.error_log.tail(new_errors) if new_errors > 0 else []
        site_counts: Dict[str, int] = {}
        for event in new_events:
            site_counts[event.site] = site_counts.get(event.site, 0) + 1
        ctx.bus.emit(
            RequestEnd(
                request_id=request.request_id,
                kind=request.kind,
                outcome=outcome.value,
                is_attack=request.is_attack,
                elapsed_seconds=elapsed,
                memory_errors=len(new_events),
                error_sites=tuple(site_counts.items()),
            )
        )
        return RequestResult(
            outcome=outcome,
            response=response,
            error=error,
            memory_errors=list(new_events),
            elapsed_seconds=elapsed,
        )

    # -- introspection ------------------------------------------------------------

    def memory_error_count(self) -> int:
        """Total memory errors attempted over the server's lifetime."""
        return self.ctx.error_log.total_recorded

    def describe(self) -> str:
        """One-line description used in reports."""
        return f"{self.name} [{self.policy.name}]"
