"""Mutt 1.4 and its ``utf8_to_utf7`` heap overflow (paper §2, §4.6, Figure 1).

When Mutt opens a mailbox with an IMAP address it converts the folder name
from UTF-8 to modified UTF-7.  The conversion buffer is allocated at
``u8len * 2 + 1`` bytes, but the conversion can expand the name by up to a
factor of 7/3, so a crafted folder name overflows the heap buffer.

The Python reimplementation below is a line-for-line port of the Figure 1
routine, with every load and store routed through the simulated memory
accessor; which of the three builds you get is decided purely by the policy
the server was constructed with:

* Standard — the overflow smashes the heap allocator's top-chunk header and
  the process dies on the next allocation (a segmentation-violation analogue).
* Bounds Check — the first out-of-bounds store terminates the process before
  the user interface appears.
* Failure Oblivious — the out-of-bounds stores are discarded, the truncated
  name is sent to the IMAP server, the server answers "no such folder", and
  Mutt's ordinary error handling rejects the request and keeps running.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.memory.pointer import FatPointer
from repro.servers.base import Request, Response, Server, ServerError

#: Modified UTF-7 base64 alphabet (RFC 3501 uses ',' instead of '/').
B64_CHARS = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+,"

#: Default folders available on the simulated IMAP server.
DEFAULT_FOLDERS: Dict[bytes, List[Dict[str, bytes]]] = {
    b"INBOX": [
        {"from": b"alice@example.org", "subject": b"status", "body": b""},
        {"from": b"bob@example.org", "subject": b"meeting", "body": b"see agenda"},
    ],
    b"archive": [],
}


class ImapServerStub:
    """The remote IMAP server Mutt talks to.

    Only the behaviour the paper's scenario needs is modelled: SELECT of a
    folder by its UTF-7 encoded name, returning either the message list or a
    "no such folder" error code that Mutt's error handling consumes.
    """

    def __init__(self, folders: Dict[bytes, List[Dict[str, bytes]]]) -> None:
        # The IMAP server knows folders by their UTF-7 names.  All default
        # folder names are ASCII, so their UTF-7 form equals their UTF-8 form.
        self._folders = {name: list(messages) for name, messages in folders.items()}

    def select(self, utf7_name: bytes) -> Optional[List[Dict[str, bytes]]]:
        """Return the folder's messages, or None if the folder does not exist."""
        return self._folders.get(utf7_name)

    def folder_names(self) -> List[bytes]:
        """All folder names known to the server."""
        return list(self._folders)

    def append(self, utf7_name: bytes, message: Dict[str, bytes]) -> bool:
        """Append a message to a folder; False if the folder does not exist."""
        if utf7_name not in self._folders:
            return False
        self._folders[utf7_name].append(message)
        return True

    def remove(self, utf7_name: bytes, index: int) -> Optional[Dict[str, bytes]]:
        """Remove and return a message by index, or None on any error."""
        messages = self._folders.get(utf7_name)
        if messages is None or not 0 <= index < len(messages):
            return None
        return messages.pop(index)


class MuttServer(Server):
    """The Mutt mail user agent with the Figure 1 conversion bug.

    Request kinds
    -------------
    ``open_folder``
        payload ``{"folder": bytes}`` — UTF-8 folder name to SELECT.  A name
        with many control characters triggers the overflow (§4.6.1).
    ``read``
        payload ``{"index": int}`` — display a message from the current folder.
    ``move``
        payload ``{"index": int, "target": bytes}`` — move a message to another
        folder (both names must be benign).

    Configuration keys
    ------------------
    ``folders``
        Mapping of folder name to message list for the IMAP stub.
    ``startup_folder``
        Folder opened while Mutt starts (the stability experiment configures
        an attack name here, which is why the Bounds Check build "terminates
        before the user interface comes up").
    """

    name = "mutt"

    # -- lifecycle -----------------------------------------------------------------

    def startup(self) -> None:
        folders = self.config.get("folders", DEFAULT_FOLDERS)
        self.imap = ImapServerStub(folders)
        self.current_folder_name: Optional[bytes] = None
        self.current_messages: List[Dict[str, bytes]] = []
        startup_folder = self.config.get("startup_folder", b"INBOX")
        self._open_folder(startup_folder)

    def handle(self, request: Request) -> Response:
        if request.kind == "open_folder":
            return self._handle_open(request)
        if request.kind == "read":
            return self._handle_read(request)
        if request.kind == "move":
            return self._handle_move(request)
        raise ServerError(f"unknown mutt request kind {request.kind!r}")

    # -- request handlers -------------------------------------------------------------

    def _handle_open(self, request: Request) -> Response:
        folder = request.payload["folder"]
        self._open_folder(folder)
        return Response.ok(detail=f"opened {folder!r} ({len(self.current_messages)} messages)")

    def _handle_read(self, request: Request) -> Response:
        index = int(request.payload.get("index", 0))
        if not self.current_messages or not 0 <= index < len(self.current_messages):
            raise ServerError("no such message")
        message = self.current_messages[index]
        display = self._format_message(message)
        return Response.ok(body=display, detail="message displayed")

    def _handle_move(self, request: Request) -> Response:
        index = int(request.payload.get("index", 0))
        target = request.payload["target"]
        if not self.current_messages or not 0 <= index < len(self.current_messages):
            raise ServerError("no such message")
        target_utf7 = self._convert_folder_name(target)
        if self.imap.select(target_utf7) is None:
            raise ServerError("target folder does not exist")
        message = self.current_messages.pop(index)
        self.imap.remove(self._current_utf7, index)
        self.imap.append(target_utf7, message)
        return Response.ok(detail=f"moved message {index} to {target!r}")

    # -- folder opening (the vulnerable path) -------------------------------------------

    def _open_folder(self, utf8_name: bytes) -> None:
        """SELECT a folder: convert its name to UTF-7 and ask the IMAP server."""
        utf7_name = self._convert_folder_name(utf8_name)
        messages = self.imap.select(utf7_name)
        if messages is None:
            # The anticipated error case: the IMAP server's error code is
            # handled by Mutt's standard error-handling logic (§4.6.2).
            raise ServerError(f"IMAP server: no such folder {utf7_name[:40]!r}")
        self.current_folder_name = utf8_name
        self._current_utf7 = utf7_name
        self.current_messages = list(messages)

    def _convert_folder_name(self, utf8_name: bytes) -> bytes:
        """Run the Figure 1 conversion over simulated memory and read the result back."""
        ctx = self.ctx
        ctx.set_site("mutt.utf8_to_utf7")
        u8 = ctx.alloc_c_string(utf8_name, name="imap_folder_utf8")
        result = utf8_to_utf7(ctx, u8, len(utf8_name))
        ctx.set_site("")
        if result is None or result.is_null:
            raise ServerError("invalid UTF-8 in folder name")
        utf7 = ctx.read_c_string(result)
        ctx.free(result)
        ctx.free(u8)
        return utf7

    # -- display formatting (benign memory work measured by Figure 6) --------------------

    def _format_message(self, message: Dict[str, bytes]) -> bytes:
        """Build the pager display for one message through simulated memory."""
        ctx = self.ctx
        ctx.set_site("mutt.format_message")
        header = b"From: " + message["from"] + b"\nSubject: " + message["subject"] + b"\n\n"
        text = header + message.get("body", b"") + b"\n"
        buf = ctx.malloc(len(text) + 1, name="pager_buffer")
        cursor = buf
        for byte in text:
            ctx.mem.write_byte(cursor, byte)
            cursor = cursor + 1
        ctx.mem.write_byte(cursor, 0)
        display = ctx.read_c_string(buf)
        ctx.free(buf)
        ctx.set_site("")
        return display


def utf8_to_utf7(ctx, u8: FatPointer, u8len: int) -> Optional[FatPointer]:
    """Figure 1 of the paper: convert UTF-8 to modified UTF-7.

    The allocation below reproduces the bug verbatim: ``u8len * 2 + 1`` is not
    enough for inputs whose conversion expands by more than a factor of two.
    Every ``*p++ = ...`` store goes through the policy-mediated accessor, so
    the consequences of the overflow depend entirely on the build variant.

    Returns a pointer to the converted, heap-allocated name, or ``None`` for
    the ``goto bail`` paths (invalid UTF-8).
    """
    mem = ctx.mem
    # The following allocation is too small; a safe length would be u8len*4+1.
    buf = ctx.malloc(u8len * 2 + 1, name="utf7_buf")
    p = buf
    b = 0
    k = 0
    base64 = False

    def bail() -> None:
        ctx.free(buf)

    while u8len:
        c = mem.read_byte(u8)
        if c < 0x80:
            ch, n = c, 0
        elif c < 0xC2:
            bail()
            return None
        elif c < 0xE0:
            ch, n = c & 0x1F, 1
        elif c < 0xF0:
            ch, n = c & 0x0F, 2
        elif c < 0xF8:
            ch, n = c & 0x07, 3
        elif c < 0xFC:
            ch, n = c & 0x03, 4
        elif c < 0xFE:
            ch, n = c & 0x01, 5
        else:
            bail()
            return None
        u8 = u8 + 1
        u8len -= 1
        if n > u8len:
            bail()
            return None
        for i in range(n):
            trail = mem.read_byte(u8 + i)
            if (trail & 0xC0) != 0x80:
                bail()
                return None
            ch = (ch << 6) | (trail & 0x3F)
        if n > 1 and not (ch >> (n * 5 + 1)):
            bail()
            return None
        u8 = u8 + n
        u8len -= n

        if ch < 0x20 or ch >= 0x7F:
            if not base64:
                mem.write_byte(p, ord("&"))
                p = p + 1
                base64 = True
                b = 0
                k = 10
            if ch & ~0xFFFF:
                ch = 0xFFFE
            mem.write_byte(p, B64_CHARS[b | (ch >> k)])
            p = p + 1
            k -= 6
            while k >= 0:
                mem.write_byte(p, B64_CHARS[(ch >> k) & 0x3F])
                p = p + 1
                k -= 6
            b = (ch << (-k)) & 0x3F
            k += 16
        else:
            if base64:
                if k > 10:
                    mem.write_byte(p, B64_CHARS[b])
                    p = p + 1
                mem.write_byte(p, ord("-"))
                p = p + 1
                base64 = False
            mem.write_byte(p, ch)
            p = p + 1
            if ch == ord("&"):
                mem.write_byte(p, ord("-"))
                p = p + 1

    if base64:
        if k > 10:
            mem.write_byte(p, B64_CHARS[b])
            p = p + 1
        mem.write_byte(p, ord("-"))
        p = p + 1
    mem.write_byte(p, 0)
    p = p + 1
    buf = ctx.realloc(buf, p - buf, name="utf7_buf")
    return buf


# ---------------------------------------------------------------------------
# Experiment profile (Figure 6 and §4.6.2)
# ---------------------------------------------------------------------------
# Workload builders are imported lazily to keep the servers -> workloads
# import graph acyclic (the workload modules import server modules).

from repro.servers.profile import ServerProfile, register_profile  # noqa: E402


def _benchmark_config(scale: float) -> Dict[str, object]:
    from repro.workloads.benign import mutt_benchmark_folders

    return {"folders": mutt_benchmark_folders(max(int(64 * scale), 32))}


def _benign_request(kind: str, index: int) -> Request:
    from repro.workloads.benign import mutt_requests

    return mutt_requests(kind, 1)[0]


def _attack_config() -> Dict[str, object]:
    from repro.workloads.attacks import mutt_attack_config

    return mutt_attack_config()


def _attack_request() -> Request:
    from repro.workloads.attacks import mutt_attack_request

    return mutt_attack_request()


def _follow_ups() -> List[Request]:
    return [
        Request(kind="open_folder", payload={"folder": b"INBOX"}),
        Request(kind="read", payload={"index": 0}),
    ]


PROFILE = register_profile(
    ServerProfile(
        name="mutt",
        server_cls=MuttServer,
        figure_rows=("read", "move"),
        figure_number=6,
        benchmark_config=_benchmark_config,
        request_factory=_benign_request,
        attack_config=_attack_config,
        attack_request=_attack_request,
        follow_ups=_follow_ups,
        description="Mutt 1.4 utf8_to_utf7 heap overflow (§4.6, Figure 1)",
    )
)
