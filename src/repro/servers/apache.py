"""Apache 2.0.47, its mod_rewrite capture-offset stack overflow, and the child pool (§4.3).

Apache can be configured with URL rewrite rules whose match patterns contain
parenthesized captures.  While applying a rule, the worker keeps the captured
substring offsets in a stack-allocated buffer with room for ten captures; a
rule with more captures writes the extra offset pairs beyond the end of the
buffer.

Build behaviour reproduced here:

* Standard — the out-of-bounds writes corrupt the worker's stack and the child
  process serving the connection dies with a segmentation violation.
* Bounds Check — the child detects the error and terminates; the pre-fork pool
  replaces it, at a process-management cost that an attacker can exploit to
  depress throughput (§4.3.2).
* Failure Oblivious — the extra offset pairs are discarded.  Because the
  replacement pattern can only reference captures ``$0``–``$9``, the discarded
  offsets are never needed, the rewritten URL is produced correctly, and the
  request (and all subsequent requests) are served normally.

The module also provides :class:`ChildProcessPool`, the simulated pre-fork
MPM used by the throughput-under-attack experiment.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.core.policy import AccessPolicy
from repro.errors import RequestResult
from repro.memory.shared_image import SharedImageStore
from repro.servers.base import Request, Response, Server, ServerError

#: Number of capture offset pairs the stack buffer has room for (the real
#: AP_MAX_REG_MATCH is 10).
MAX_CAPTURES = 10

#: Bytes per stored capture: two 4-byte offsets (start, end).
CAPTURE_PAIR_SIZE = 8

#: Block size for copying file contents into the response (the analogue of the
#: kernel/file-I/O work that dominates Apache's request time in Figure 3).
#: Apache hands whole buckets to writev/sendfile, so the unit of checked work
#: is large and the per-request checking overhead stays in the low percent.
SEND_CHUNK = 64 * 1024


@dataclass
class RewriteRule:
    """One configured rewrite rule: a match pattern and a replacement."""

    pattern: str
    replacement: str

    def capture_count(self) -> int:
        """Number of offset pairs the rule produces ($0 plus its groups)."""
        return re.compile(self.pattern).groups + 1


#: Default site content: the project home page (the paper's Small request
#: serves a 5 KByte page) and a large download (830 KBytes).
def default_site_files() -> Dict[str, bytes]:
    """Build the default document tree served by the simulated Apache."""
    return {
        "/index.html": (b"<html><body>" + b"research project home page. " * 180 + b"</body></html>"),
        "/download/big.dat": bytes(range(256)) * (830 * 1024 // 256),
        "/docs/readme.txt": b"failure-oblivious computing reproduction\n" * 40,
    }


DEFAULT_REWRITE_RULES: List[RewriteRule] = [
    RewriteRule(pattern=r"^/old/(.*)$", replacement="/docs/$1"),
    RewriteRule(pattern=r"^/project/?$", replacement="/index.html"),
]

#: The vulnerable configuration of §4.3.1: a rule whose pattern has more than
#: ten captures.  A URL matching it overflows the capture-offset buffer.
VULNERABLE_RULE = RewriteRule(
    pattern=r"^/r/(a*)(b*)(c*)(d*)(e*)(f*)(g*)(h*)(i*)(j*)(k*)(l*)(m*)/(.*)$",
    replacement="/docs/$1$2$3",
)


class ApacheServer(Server):
    """One Apache worker (child) process.

    Request kinds
    -------------
    ``get``
        payload ``{"url": str}`` — serve a static file after applying the
        rewrite rules (the vulnerable path runs whenever a rule matches).

    Configuration keys
    ------------------
    ``files``
        Mapping of path to content bytes (the document tree).
    ``rewrite_rules``
        List of :class:`RewriteRule`.  Including :data:`VULNERABLE_RULE` plants
        the documented vulnerability.
    """

    name = "apache"

    # -- lifecycle -----------------------------------------------------------------

    def startup(self) -> None:
        """Parse configuration and build per-child lookup tables.

        Startup deliberately does a realistic amount of work (configuration
        parsing through simulated memory, rule compilation, MIME table
        construction) because the cost of restarting a child after a crash is
        exactly what the throughput experiment measures.
        """
        self.files: Dict[str, bytes] = dict(self.config.get("files") or default_site_files())
        rules = self.config.get("rewrite_rules")
        self.rewrite_rules: List[RewriteRule] = list(rules) if rules is not None else list(
            DEFAULT_REWRITE_RULES
        )
        self._compiled_rules = [
            (re.compile(rule.pattern), rule) for rule in self.rewrite_rules
        ]
        self._parse_configuration_text()
        self.requests_served = 0

    def _parse_configuration_text(self) -> None:
        """Scan a httpd.conf-like text through simulated memory (startup cost)."""
        ctx = self.ctx
        ctx.set_site("apache.read_config")
        lines = [f"RewriteRule {rule.pattern} {rule.replacement}" for rule in self.rewrite_rules]
        lines += [f"# document {path} ({len(data)} bytes)" for path, data in self.files.items()]
        lines += ["KeepAlive On", "MaxClients 150", "Timeout 300"] * 20
        text = ("\n".join(lines) + "\n").encode()
        conf = ctx.malloc(len(text) + 1, name="httpd_conf")
        cursor = conf
        for byte in text:
            ctx.mem.write_byte(cursor, byte)
            cursor = cursor + 1
        ctx.mem.write_byte(cursor, 0)
        # Tokenize the configuration (byte scan) to model directive parsing.
        directives = 0
        scan = conf
        for _ in range(len(text)):
            if ctx.mem.read_byte(scan) == ord("\n"):
                directives += 1
            scan = scan + 1
        self._directive_count = directives
        ctx.free(conf)
        ctx.set_site("")

    def handle(self, request: Request) -> Response:
        if request.kind == "get":
            return self._handle_get(request)
        raise ServerError(f"unknown apache request kind {request.kind!r}")

    # -- request processing ---------------------------------------------------------

    def _handle_get(self, request: Request) -> Response:
        url = str(request.payload["url"])
        target = self._apply_rewrite_rules(url)
        content = self.files.get(target)
        if content is None:
            raise ServerError(f"404 not found: {target}")
        body = self._send_file(content)
        self.requests_served += 1
        return Response.ok(body=body, detail=f"200 OK {target} ({len(content)} bytes)")

    def _apply_rewrite_rules(self, url: str) -> str:
        """Apply the first matching rewrite rule (the vulnerable path, §4.3.1)."""
        for compiled, rule in self._compiled_rules:
            match = compiled.match(url)
            if match is None:
                continue
            return self._substitute(rule, match, url)
        return url

    def _substitute(self, rule: RewriteRule, match: "re.Match", url: str) -> str:
        """Store capture offsets in the fixed-size stack buffer, then substitute.

        The buffer has room for :data:`MAX_CAPTURES` offset pairs; a rule with
        more captures writes the extra pairs beyond its end — the documented
        memory error.
        """
        ctx = self.ctx
        mem = ctx.mem
        ctx.set_site("apache.rewrite_captures")
        ncaptures = match.re.groups + 1
        with ctx.stack_frame("try_rewrite"):
            offsets = ctx.stack_buffer("regmatch", MAX_CAPTURES * CAPTURE_PAIR_SIZE)
            ctx.seal_frame()
            for i in range(ncaptures):
                span = match.span(i) if i <= match.re.groups else (-1, -1)
                start, end = (span if span != (-1, -1) else (0, 0))
                base = offsets + i * CAPTURE_PAIR_SIZE
                mem.write_int(base, start, size=4)
                mem.write_int(base + 4, end, size=4)
            # Only the first ten pairs are ever read back, because replacement
            # patterns can only name $0 through $9 (§4.3.2).
            stored: List[tuple] = []
            for i in range(min(ncaptures, MAX_CAPTURES)):
                base = offsets + i * CAPTURE_PAIR_SIZE
                start = mem.read_int(base, size=4)
                end = mem.read_int(base + 4, size=4)
                stored.append((start, end))
        ctx.set_site("")
        result = rule.replacement
        for i, (start, end) in enumerate(stored):
            if f"${i}" in result:
                result = result.replace(f"${i}", url[start:end])
        return result

    def _send_file(self, content: bytes) -> bytes:
        """Copy the file through the response buffer in kernel-sized chunks.

        Chunked block copies keep the per-byte checking overhead low, which is
        why the Apache rows of Figure 3 show only a few percent slowdown.
        """
        ctx = self.ctx
        ctx.set_site("apache.send_file")
        buf = ctx.malloc(SEND_CHUNK, name="brigade_buffer")
        sent = bytearray()
        for start in range(0, len(content), SEND_CHUNK):
            chunk = content[start : start + SEND_CHUNK]
            ctx.mem.write(buf, chunk)
            sent += ctx.mem.read(buf, len(chunk))
        ctx.free(buf)
        ctx.set_site("")
        return bytes(sent)


class ChildProcessPool:
    """The pre-fork MPM: a pool of worker children behind one master.

    The master dispatches each request to an idle child.  When a child dies
    (crash, bounds-check termination, or exploit), the master forks a
    replacement before the next request can be served by that slot, and the
    replacement's startup cost is charged to the observed service time —
    reproducing the throughput collapse the Bounds Check and Standard builds
    suffer while under attack (§4.3.2).

    Like the real pre-fork MPM, the pool boots *one* template process and
    forks every worker from it: the first child runs ``startup()`` and its
    post-boot :class:`~repro.servers.base.ProcessImage` seeds all siblings
    and every replacement child (``use_checkpoints=False`` restores the
    boot-every-child behaviour, kept for the restart benchmark's baseline).
    A cloned child is observably identical to a booted one — the restart
    equivalence suite proves it — but costs a memory restore instead of a
    full configuration parse.
    """

    def __init__(
        self,
        policy_factory: Callable[[], AccessPolicy],
        pool_size: int = 4,
        config: Optional[Dict[str, object]] = None,
        use_checkpoints: bool = True,
    ) -> None:
        self.policy_factory = policy_factory
        self.pool_size = pool_size
        self.config = dict(config or {})
        self.use_checkpoints = use_checkpoints
        self.children: List[ApacheServer] = []
        self.child_deaths = 0
        self.restart_seconds = 0.0
        self._next_child = 0
        self._template_image = None
        # One shared-memory copy of the template image for every child and
        # replacement fork (mirrors the fleet scheduler; degrades to plain
        # bytes when shared memory is unavailable).  Released by close().
        self._image_store = SharedImageStore()
        for _ in range(pool_size):
            self.children.append(self._fork_child())

    def _fork_child(self) -> ApacheServer:
        child = ApacheServer(self.policy_factory, config=self.config)
        if not self.use_checkpoints:
            # Pre-checkpoint cost model: boot every child, capture nothing.
            child.checkpoint_restarts = False
            child.start()
        elif self._template_image is None:
            child.start()
            image = child.boot_image
            shared_ctx = self._image_store.share_image(image.ctx)
            if shared_ctx is not image.ctx:
                image = replace(image, ctx=shared_ctx)
            self._template_image = image
        else:
            child.adopt_image(self._template_image)
        return child

    def close(self) -> None:
        """Release the shared template image (idempotent).

        Children stay usable for queries afterwards, but no further
        replacement fork may restore from the template.
        """
        self._template_image = None
        self._image_store.close()

    def dispatch(self, request: Request) -> RequestResult:
        """Serve one request on the next child, replacing it if it dies."""
        slot = self._next_child
        self._next_child = (self._next_child + 1) % self.pool_size
        child = self.children[slot]
        if not child.alive:
            restart_start = time.perf_counter()
            child = self._fork_child()
            self.children[slot] = child
            self.restart_seconds += time.perf_counter() - restart_start
        result = child.process(request)
        if result.fatal:
            self.child_deaths += 1
        return result

    def alive_children(self) -> int:
        """Number of children currently able to serve requests."""
        return sum(1 for child in self.children if child.alive)

    def total_memory_errors(self) -> int:
        """Memory errors recorded across all current children."""
        return sum(child.memory_error_count() for child in self.children)


# ---------------------------------------------------------------------------
# Experiment profile (Figure 3 and §4.3.2)
# ---------------------------------------------------------------------------
# Workload builders are imported lazily: the workload modules import this
# module at import time (for the rewrite-rule constants).

from repro.servers.profile import ServerProfile, register_profile  # noqa: E402


def _benign_request(kind: str, index: int) -> Request:
    from repro.workloads.benign import apache_requests

    return apache_requests(kind, 1)[0]


def _attack_config() -> Dict[str, object]:
    from repro.workloads.attacks import apache_vulnerable_config

    return apache_vulnerable_config()


def _attack_request() -> Request:
    from repro.workloads.attacks import apache_attack_request

    return apache_attack_request()


def _follow_ups() -> List[Request]:
    return [Request(kind="get", payload={"url": "/index.html"})]


PROFILE = register_profile(
    ServerProfile(
        name="apache",
        server_cls=ApacheServer,
        figure_rows=("small", "large"),
        figure_number=3,
        request_factory=_benign_request,
        attack_config=_attack_config,
        attack_request=_attack_request,
        follow_ups=_follow_ups,
        description="Apache 2.0.47 mod_rewrite capture-offset stack overflow (§4.3)",
    )
)
