"""Attack inputs that trigger each server's documented memory error.

Each generator reproduces the *triggering condition* described in the paper
and the public advisories it cites, expressed against our reimplemented code
paths:

* Pine (§4.2, Security Focus bid 6120): a message whose ``From`` field needs
  many quote characters, overflowing the undersized display buffer.
* Apache (§4.3, bid 8911): a URL matching a rewrite rule with more than ten
  parenthesized captures, overflowing the capture-offset buffer.
* Sendmail (§4.4, bid 7230): an address alternating 0xFF (sign-extended to -1)
  with ``\\`` characters, defeating prescan's bounds check.
* Midnight Commander (§4.5, bid 8658): a tgz archive with enough absolute
  symlinks that their accumulated component names overflow the link buffer.
* Mutt (§4.6, SecuriTeam 5FP0T0U9FU): an IMAP folder name whose UTF-8 to
  UTF-7 conversion expands by more than a factor of two.
"""

from __future__ import annotations

from typing import Dict, List

from repro.servers.apache import VULNERABLE_RULE, DEFAULT_REWRITE_RULES
from repro.servers.base import Request
from repro.servers.midnight_commander import ArchiveEntry, LINKNAME_BUFFER_SIZE
from repro.servers.pine import DEFAULT_MAILBOX, LENGTH_ESTIMATE_SLACK
from repro.servers.sendmail import PRESCAN_BUFFER_SIZE

# ---------------------------------------------------------------------------
# Pine
# ---------------------------------------------------------------------------


def pine_attack_message(quoted_characters: int = 64) -> Dict[str, bytes]:
    """A message whose From field overflows Pine's display buffer.

    Every ``"`` in the From field grows the quoted copy by one byte; anything
    beyond :data:`~repro.servers.pine.LENGTH_ESTIMATE_SLACK` extra bytes runs
    off the end of the buffer.
    """
    if quoted_characters <= LENGTH_ESTIMATE_SLACK:
        raise ValueError(
            f"need more than {LENGTH_ESTIMATE_SLACK} quoted characters to overflow"
        )
    from_field = b'"' * quoted_characters + b" <attacker@evil.example>"
    return {"from": from_field, "subject": b"hello", "body": b"ignore me"}


def pine_poisoned_mailbox(quoted_characters: int = 64) -> List[Dict[str, bytes]]:
    """The default mailbox with the attack message appended (§4.2.2)."""
    return list(DEFAULT_MAILBOX) + [pine_attack_message(quoted_characters)]


# ---------------------------------------------------------------------------
# Apache
# ---------------------------------------------------------------------------


def apache_vulnerable_config() -> Dict[str, object]:
    """Server configuration containing the >10-capture rewrite rule."""
    return {"rewrite_rules": list(DEFAULT_REWRITE_RULES) + [VULNERABLE_RULE]}


def apache_attack_request() -> Request:
    """A URL that matches the vulnerable rule with all of its captures."""
    url = "/r/" + "a" * 4 + "bbccddeeffgghhiijjkkllmm/AAAA-payload"
    return Request(kind="get", payload={"url": url}, is_attack=True)


# ---------------------------------------------------------------------------
# Sendmail
# ---------------------------------------------------------------------------


def sendmail_attack_address(pairs: int = 0) -> bytes:
    """The alternating 0xFF / ``\\`` address of §4.4.1.

    Each pair drives prescan down the path that stores a ``\\`` without a
    bounds check, so enough pairs write arbitrarily far beyond the buffer.
    """
    if pairs <= 0:
        pairs = PRESCAN_BUFFER_SIZE * 2
    return (b"\xff\\" * pairs) + b"@evil.example"


def sendmail_attack_request(body: bytes = b"0wned") -> Request:
    """A message whose sender address triggers the prescan overflow."""
    return Request(
        kind="receive",
        payload={
            "sender": sendmail_attack_address(),
            "recipient": b"user@localhost",
            "body": body,
        },
        is_attack=True,
    )


# ---------------------------------------------------------------------------
# Midnight Commander
# ---------------------------------------------------------------------------


def midnight_commander_attack_archive(links: int = 8) -> List[ArchiveEntry]:
    """A tgz archive whose absolute symlinks overflow the link-name buffer.

    Component names accumulate in the uninitialized buffer; a handful of
    moderately long absolute targets exceeds
    :data:`~repro.servers.midnight_commander.LINKNAME_BUFFER_SIZE`.
    """
    per_link = max(LINKNAME_BUFFER_SIZE // max(links, 1), 8)
    entries = [ArchiveEntry(name="README", content=b"archive readme")]
    for index in range(links):
        target = "/" + "/".join(
            f"AAAA{index:02d}{j:02d}" for j in range(per_link // 8 + 1)
        )
        entries.append(
            ArchiveEntry(name=f"link{index}", is_symlink=True, target=target)
        )
    return entries


def midnight_commander_attack_request(links: int = 8) -> Request:
    """Open the malicious archive (§4.5.2)."""
    return Request(
        kind="open_archive",
        payload={"entries": midnight_commander_attack_archive(links)},
        is_attack=True,
    )


def midnight_commander_blank_line_config() -> Dict[str, object]:
    """A configuration file with blank lines (the §4.5.4 benign error trigger)."""
    return {
        "config_text": (
            "[Midnight-Commander]\n"
            "verbose=1\n"
            "\n"
            "show_backups=0\n"
            "\n"
            "confirm_delete=1\n"
        )
    }


# ---------------------------------------------------------------------------
# Mutt
# ---------------------------------------------------------------------------


def mutt_attack_folder_name(length: int = 120) -> bytes:
    """An IMAP folder name whose UTF-7 conversion expands by more than 2x.

    Control characters (one UTF-8 byte each) are base64-encoded as 16-bit
    units in UTF-7, an expansion of roughly 8/3 — beyond the factor of two the
    buggy allocation assumes (§4.6.1).
    """
    return b"\x01" * length


def mutt_attack_request(length: int = 120) -> Request:
    """Open the folder with the expanding name."""
    return Request(
        kind="open_folder",
        payload={"folder": mutt_attack_folder_name(length)},
        is_attack=True,
    )


def mutt_attack_config(length: int = 120) -> Dict[str, object]:
    """Configure Mutt to open the malicious folder while starting (§4.6.4)."""
    return {"startup_folder": mutt_attack_folder_name(length)}


# ---------------------------------------------------------------------------
# Registry used by the harness
# ---------------------------------------------------------------------------


def attack_request_for(server_name: str) -> Request:
    """Return the canonical attack request for a server (from its profile)."""
    from repro.servers.profile import get_profile

    try:
        return get_profile(server_name).make_attack_request()
    except KeyError:
        raise KeyError(f"no attack request defined for server {server_name!r}") from None


def attack_config_for(server_name: str) -> Dict[str, object]:
    """Return a server configuration that plants the documented error trigger.

    For Pine, Mutt, and Midnight Commander the error fires during start-up or
    while loading attacker-influenced data, so the trigger lives in the
    configuration; for Apache the configuration contains the vulnerable rule
    (the attack then arrives as a request); Sendmail needs no configuration
    change because the attack arrives entirely in the request.  Each server's
    profile declares its own trigger; unknown servers raise ``KeyError``.
    """
    from repro.servers.profile import get_profile

    return get_profile(server_name).make_attack_config()
