"""Mixed request streams for the stability and throughput experiments.

The paper's stability experiments (§4.2.4, §4.3.4, §4.4.4, §4.5.4, §4.6.4) run
each server for a long period on its normal workload while periodically
injecting the attack input; the Apache throughput experiment (§4.3.2) loads
the server with attack requests from several machines while a legitimate
client fetches the home page.  This module builds those request sequences.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.servers.base import Request
from repro.workloads.attacks import attack_request_for
from repro.workloads.benign import random_legitimate_request


@dataclass
class RequestStream:
    """A finite, ordered stream of requests plus bookkeeping about its makeup."""

    requests: List[Request] = field(default_factory=list)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def attack_count(self) -> int:
        """Number of attack requests in the stream."""
        return sum(1 for request in self.requests if request.is_attack)

    @property
    def legitimate_count(self) -> int:
        """Number of legitimate requests in the stream."""
        return len(self.requests) - self.attack_count

    def describe(self) -> str:
        """One-line summary used in reports."""
        return (
            f"{len(self.requests)} requests "
            f"({self.legitimate_count} legitimate, {self.attack_count} attack)"
        )


def mixed_stream(
    server_name: str,
    total_requests: int = 200,
    attack_every: int = 25,
    seed: int = 20040101,
    attack_request: Optional[Request] = None,
) -> RequestStream:
    """A long benign stream with an attack injected every ``attack_every`` requests.

    This is the stability workload: mostly legitimate traffic, periodically
    interrupted by the documented attack, with the expectation (for the
    failure-oblivious build) that every legitimate request is still served.
    """
    if total_requests <= 0:
        raise ValueError("total_requests must be positive")
    rng = random.Random(seed)
    requests: List[Request] = []
    for index in range(total_requests):
        if attack_every > 0 and index > 0 and index % attack_every == 0:
            requests.append(attack_request if attack_request is not None
                            else attack_request_for(server_name))
        else:
            requests.append(random_legitimate_request(server_name, rng))
    return RequestStream(requests=requests)


def throughput_stream(
    attack_fraction: float = 0.5,
    total_requests: int = 400,
    seed: int = 20040102,
) -> RequestStream:
    """The Apache throughput-under-attack workload (§4.3.2).

    Attack requests (URLs that trigger the rewrite overflow) are interleaved
    with legitimate fetches of the project home page in the requested
    proportion; the experiment measures the rate at which the legitimate
    fetches complete.
    """
    if not 0.0 <= attack_fraction < 1.0:
        raise ValueError("attack_fraction must be in [0, 1)")
    rng = random.Random(seed)
    requests: List[Request] = []
    for _ in range(total_requests):
        if rng.random() < attack_fraction:
            requests.append(attack_request_for("apache"))
        else:
            requests.append(Request(kind="get", payload={"url": "/index.html"}))
    return RequestStream(requests=requests)
