"""Workload and attack generators for the five evaluated servers.

The paper's methodology (§4.1) needs two kinds of input per server:

* a *benign* workload both the Standard and Failure Oblivious builds execute
  successfully, used to measure request processing times (Figures 2-6); and
* an *attack* input that triggers the server's documented memory error, used
  for the security/resilience and stability experiments.

:mod:`repro.workloads.benign` provides the former, :mod:`repro.workloads.attacks`
the latter, and :mod:`repro.workloads.streams` composes them into the mixed,
long-running request streams used by the stability and throughput experiments.
"""

from repro.workloads.attacks import (
    apache_attack_request,
    apache_vulnerable_config,
    midnight_commander_attack_request,
    midnight_commander_blank_line_config,
    mutt_attack_folder_name,
    mutt_attack_request,
    pine_attack_message,
    pine_poisoned_mailbox,
    sendmail_attack_address,
    sendmail_attack_request,
    attack_request_for,
    attack_config_for,
)
from repro.workloads.benign import (
    apache_requests,
    midnight_commander_requests,
    mutt_requests,
    pine_requests,
    sendmail_requests,
    benign_requests_for,
)
from repro.workloads.streams import RequestStream, mixed_stream, throughput_stream

__all__ = [
    "apache_attack_request",
    "apache_vulnerable_config",
    "midnight_commander_attack_request",
    "midnight_commander_blank_line_config",
    "mutt_attack_folder_name",
    "mutt_attack_request",
    "pine_attack_message",
    "pine_poisoned_mailbox",
    "sendmail_attack_address",
    "sendmail_attack_request",
    "attack_request_for",
    "attack_config_for",
    "apache_requests",
    "midnight_commander_requests",
    "mutt_requests",
    "pine_requests",
    "sendmail_requests",
    "benign_requests_for",
    "RequestStream",
    "mixed_stream",
    "throughput_stream",
]
