"""Benign (legitimate) request workloads mirroring the paper's performance figures.

Each generator produces the request list for one row of the corresponding
figure:

* Figure 2 (Pine): Read, Compose, Move.
* Figure 3 (Apache): Small (the 5 KByte project home page), Large (an
  830 KByte file).
* Figure 4 (Sendmail): Receive Small (4-byte body), Receive Large (4 KByte
  body), Send Small, Send Large.
* Figure 5 (Midnight Commander): Copy (a directory tree), Move, MkDir, Delete.
* Figure 6 (Mutt): Read, Move.

All generators are deterministic; any randomness is driven by an explicit
``random.Random`` seed so experiments are repeatable.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.servers.base import Request

# ---------------------------------------------------------------------------
# Pine (Figure 2)
# ---------------------------------------------------------------------------


def pine_benchmark_mailbox(message_count: int = 64) -> List[Dict[str, bytes]]:
    """A mailbox of empty messages, large enough for repeated Move requests.

    The paper's Read and Move requests operate on an empty message; providing
    ``message_count`` of them lets a benchmark repeat the Move request without
    running out of messages.
    """
    return [
        {"from": b"user%03d@example.org" % i, "subject": b"(no subject)", "body": b""}
        for i in range(message_count)
    ]


def pine_requests(kind: str, count: int = 1) -> List[Request]:
    """Pine requests: ``read``, ``compose``, or ``move`` (paper's Figure 2 rows)."""
    if kind == "read":
        return [Request(kind="read", payload={"index": 0}) for _ in range(count)]
    if kind == "compose":
        return [Request(kind="compose") for _ in range(count)]
    if kind == "move":
        return [
            Request(kind="move", payload={"index": 0, "target": "saved-messages"})
            for _ in range(count)
        ]
    raise ValueError(f"unknown pine request kind {kind!r}")


# ---------------------------------------------------------------------------
# Apache (Figure 3)
# ---------------------------------------------------------------------------


def apache_requests(kind: str, count: int = 1) -> List[Request]:
    """Apache requests: ``small`` (home page) or ``large`` (830 KByte file)."""
    urls = {"small": "/index.html", "large": "/download/big.dat"}
    if kind not in urls:
        raise ValueError(f"unknown apache request kind {kind!r}")
    return [Request(kind="get", payload={"url": urls[kind]}) for _ in range(count)]


# ---------------------------------------------------------------------------
# Sendmail (Figure 4)
# ---------------------------------------------------------------------------

_SMALL_BODY = b"ping"
_LARGE_BODY = (b"Lorem ipsum dolor sit amet, consectetur adipiscing elit. " * 72)[:4096]


def sendmail_requests(kind: str, count: int = 1) -> List[Request]:
    """Sendmail requests: ``recv_small``, ``recv_large``, ``send_small``, ``send_large``."""
    bodies = {
        "recv_small": ("receive", _SMALL_BODY),
        "recv_large": ("receive", _LARGE_BODY),
        "send_small": ("send", _SMALL_BODY),
        "send_large": ("send", _LARGE_BODY),
    }
    if kind not in bodies:
        raise ValueError(f"unknown sendmail request kind {kind!r}")
    direction, body = bodies[kind]
    return [
        Request(
            kind=direction,
            payload={
                "sender": b"peer@example.org",
                "recipient": b"user@localhost",
                "body": body,
            },
        )
        for _ in range(count)
    ]


# ---------------------------------------------------------------------------
# Midnight Commander (Figure 5)
# ---------------------------------------------------------------------------


def midnight_commander_vfs_files(
    directory_bytes: int = 2 * 1024 * 1024,
    file_count: int = 16,
    delete_file_bytes: int = 256 * 1024,
) -> Dict[str, bytes]:
    """Pre-populate the VFS with a directory tree to copy/move and a file to delete.

    The paper copies a 31 MByte tree and deletes a 3.2 MByte file; the default
    sizes here are scaled down so the benchmark suite stays fast, and the
    benchmark harness documents the scaling in its output.
    """
    per_file = max(directory_bytes // file_count, 1)
    files = {
        f"/home/user/data/file{i:02d}.bin": bytes([i % 251]) * per_file
        for i in range(file_count)
    }
    files["/home/user/big-download.iso"] = b"\xab" * delete_file_bytes
    return files


def midnight_commander_requests(kind: str, count: int = 1, unique_suffix: int = 0) -> List[Request]:
    """Midnight Commander requests: ``copy``, ``move``, ``mkdir``, ``delete``.

    ``move`` requests alternate direction (data -> data_moved -> data) so any
    number of repetitions succeeds; ``copy`` and ``mkdir`` use unique target
    names; ``delete`` always targets the pre-populated large file and the
    caller is expected to re-create it between repetitions (the harness does).
    """
    requests: List[Request] = []
    for i in range(count):
        token = f"{unique_suffix}_{i}"
        if kind == "copy":
            requests.append(
                Request(kind="copy", payload={"source": "/home/user/data", "target": f"/home/user/copy{token}"})
            )
        elif kind == "move":
            if i % 2 == 0:
                payload = {"source": "/home/user/data", "target": "/home/user/data_moved"}
            else:
                payload = {"source": "/home/user/data_moved", "target": "/home/user/data"}
            requests.append(Request(kind="move", payload=payload))
        elif kind == "mkdir":
            requests.append(Request(kind="mkdir", payload={"path": f"/home/user/newdir{token}"}))
        elif kind == "delete":
            requests.append(Request(kind="delete", payload={"path": "/home/user/big-download.iso"}))
        else:
            raise ValueError(f"unknown midnight commander request kind {kind!r}")
    return requests


# ---------------------------------------------------------------------------
# Mutt (Figure 6)
# ---------------------------------------------------------------------------


def mutt_benchmark_folders(message_count: int = 64) -> Dict[bytes, List[Dict[str, bytes]]]:
    """Folders with enough empty messages for repeated Move requests."""
    return {
        b"INBOX": [
            {"from": b"user%03d@example.org" % i, "subject": b"(no subject)", "body": b""}
            for i in range(message_count)
        ],
        b"archive": [],
    }


def mutt_requests(kind: str, count: int = 1) -> List[Request]:
    """Mutt requests: ``read`` or ``move`` (paper's Figure 6 rows)."""
    if kind == "read":
        return [Request(kind="read", payload={"index": 0}) for _ in range(count)]
    if kind == "move":
        return [
            Request(kind="move", payload={"index": 0, "target": b"archive"})
            for _ in range(count)
        ]
    raise ValueError(f"unknown mutt request kind {kind!r}")


# ---------------------------------------------------------------------------
# Registry used by the harness
# ---------------------------------------------------------------------------

def _profile_figure_rows() -> Dict[str, List[str]]:
    # Imported here (not at module top) so this module can also be pulled in
    # lazily from inside the server modules' profile closures.
    from repro.servers import SERVER_CLASSES
    from repro.servers.profile import get_profile

    return {name: list(get_profile(name).figure_rows) for name in SERVER_CLASSES}


#: For each paper server, the request kinds that appear as rows of its figure.
#: Derived from the registered profiles (the single source of truth); consult
#: ``get_profile(name).figure_rows`` directly for servers registered later.
FIGURE_ROWS: Dict[str, List[str]] = _profile_figure_rows()

_GENERATORS = {
    "pine": pine_requests,
    "apache": apache_requests,
    "sendmail": sendmail_requests,
    "mutt": mutt_requests,
}


def benign_requests_for(server_name: str, kind: str, count: int = 1, **kwargs) -> List[Request]:
    """Return ``count`` benign requests of the given kind for the given server."""
    if server_name == "midnight-commander":
        return midnight_commander_requests(kind, count, **kwargs)
    try:
        generator = _GENERATORS[server_name]
    except KeyError:
        raise KeyError(f"no benign workload defined for server {server_name!r}") from None
    return generator(kind, count)


def random_legitimate_request(server_name: str, rng: random.Random) -> Request:
    """Pick a random benign request for a server (used by the stability streams).

    The request kinds come from the server's registered profile, so plugged-in
    servers get stability streams with no edits here; the random repetition
    index keeps generated paths unique for servers (like Midnight Commander)
    whose factories embed it.
    """
    from repro.servers.profile import get_profile

    profile = get_profile(server_name)
    kinds = list(profile.figure_rows)
    # Exclude workload kinds that need setup state (copies/moves of unique paths).
    safe_kinds = [k for k in kinds if k not in ("move", "copy", "delete")] or kinds
    kind = rng.choice(safe_kinds)
    suffix = rng.randrange(1_000_000)
    return profile.make_request(kind, suffix)
