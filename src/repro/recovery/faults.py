"""Seeded, deterministic fault injection for the recovery layer.

The supervisor's recovery paths — rollback, retry, quarantine, loop
degradation — only matter if something exercises them.  :class:`FaultInjector`
is that something: a seeded source of three fault kinds, fired at fixed
points of the request lifecycle through :attr:`Server.fault_hook`:

* ``"abort"`` — raise a :class:`~repro.errors.SegmentationFault` before or
  after the handler (the process took a signal mid-request);
* ``"alloc-fail"`` — arm the allocator so the request's next ``malloc``
  fails as an unchecked NULL dereference
  (:meth:`~repro.memory.allocator.HeapAllocator.inject_failure`);
* ``"corrupt"`` — smash a seeded in-band heap header (a live chunk's, a free
  chunk's, or the wilderness top's), so the allocator's next metadata walk
  (the same request's end-of-request heap verification at the latest) dies
  with :class:`~repro.errors.HeapCorruption`.

All three are *transient*: the fault fires on a request's first attempt only,
so a rollback + retry observes the fault-free execution — which is exactly
the model (a cosmic ray, not a poison input).  Decisions consume the seeded
RNG once per request in submission order, so a fleet shard's fault schedule
is a pure function of ``(seed, instance)`` and serial vs pooled runs inject
identically.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import SegmentationFault
from repro.memory.allocator import HEADER_MAGIC
from repro.servers.base import Request, Server
from repro.telemetry.events import FaultInjected

FAULT_KINDS: Tuple[str, ...] = ("abort", "alloc-fail", "corrupt")

_MAGIC_WORD = struct.Struct("<I")


@dataclass(frozen=True)
class FaultPlan:
    """One decided fault: what to inject and at which lifecycle point."""

    kind: str
    point: str  # "before" or "after" the handler


class FaultInjector:
    """Decides and fires deterministic faults for one supervised server.

    Parameters
    ----------
    seed:
        Seeds the private RNG; all decisions are a pure function of it and
        the submission order.
    rate:
        Probability that a request's first attempt draws a fault.  Mutually
        exclusive with ``every``.
    every:
        Fire on every Nth first attempt instead of probabilistically —
        the exact-count mode tests and benchmarks prefer.
    kinds:
        The fault kinds to draw from (default: all three).
    """

    def __init__(
        self,
        seed: int,
        rate: float = 0.0,
        every: Optional[int] = None,
        kinds: Sequence[str] = FAULT_KINDS,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if every is not None and every <= 0:
            raise ValueError("every must be positive")
        if rate > 0.0 and every is not None:
            raise ValueError("rate and every are mutually exclusive")
        unknown = set(kinds) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        if not kinds:
            raise ValueError("kinds must not be empty")
        self.rng = random.Random(seed)
        self.rate = rate
        self.every = every
        self.kinds = tuple(kinds)
        #: First attempts seen (the decision counter for ``every`` mode).
        self.decisions = 0
        #: Faults actually fired.
        self.injected = 0
        self._plan: Optional[FaultPlan] = None

    # -- supervisor protocol ------------------------------------------------------

    def begin_attempt(self, server: Server, request: Request, attempt: int) -> None:
        """Draw (or suppress) the fault plan for one processing attempt.

        Retries (``attempt > 0``) never fault: the injected faults model
        transient conditions a rollback recovers from.  Only first attempts
        consume RNG state, so the schedule is independent of how many
        retries earlier requests needed.
        """
        if attempt > 0:
            self._plan = None
            return
        self.decisions += 1
        if self.every is not None:
            fire = self.decisions % self.every == 0
        else:
            fire = self.rng.random() < self.rate
        if not fire:
            self._plan = None
            return
        kind = self.kinds[self.rng.randrange(len(self.kinds))]
        if kind == "abort":
            point = "before" if self.rng.random() < 0.5 else "after"
        else:
            # Allocation failures must be armed before the handler runs, and
            # corruption planted before the end-of-request heap walk so the
            # fault is discovered within the same request.
            point = "before"
        self._plan = FaultPlan(kind=kind, point=point)

    def end_attempt(self, server: Server) -> None:
        """Disarm anything left over from the attempt (armed but unconsumed).

        Called after every attempt — completed or rolled back — so an armed
        allocation failure never leaks into a later request's execution.
        """
        server.ctx.heap.clear_injected_failures()
        self._plan = None

    # -- the server-side hook -----------------------------------------------------

    def hook(self, server: Server, request: Request, point: str) -> None:
        """The :attr:`Server.fault_hook` entry point; fires the planned fault."""
        plan = self._plan
        if plan is None or plan.point != point:
            return
        self._plan = None
        if plan.kind == "abort":
            self.injected += 1
            server.ctx.bus.emit(FaultInjected(
                kind="abort", request_id=request.request_id, point=point,
            ))
            raise SegmentationFault(
                0xDEAD, "injected abort: the process took a signal mid-request"
            )
        if plan.kind == "alloc-fail":
            self.injected += 1
            server.ctx.heap.inject_failure(1)
            server.ctx.bus.emit(FaultInjected(
                kind="alloc-fail", request_id=request.request_id, point=point,
            ))
            return
        # "corrupt": smash a seeded in-band heap header (live chunk, free
        # chunk, or the wilderness top — there is always at least the top).
        # The RNG is consumed whether or not a target exists, so the
        # schedule stays a pure function of the submission order.
        index_draw = self.rng.randrange(1 << 30)
        junk = self.rng.randrange(1, 1 << 32)
        headers = server.ctx.heap.header_addresses()
        if not headers:
            return  # degenerate heap layout; the fault fizzles
        header_addr = headers[index_draw % len(headers)]
        # XOR with a nonzero word: guaranteed to no longer be the magic.
        server.ctx.space.write(header_addr, _MAGIC_WORD.pack(HEADER_MAGIC ^ junk))
        self.injected += 1
        server.ctx.bus.emit(FaultInjected(
            kind="corrupt", request_id=request.request_id,
            address=header_addr, length=_MAGIC_WORD.size, point=point,
        ))

    def install(self, server: Server) -> None:
        """Install this injector as the server's fault hook."""
        server.fault_hook = self.hook
