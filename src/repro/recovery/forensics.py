"""Memory forensics: persist snapshots and diff them block by block.

The corruption-propagation experiment the paper never had: take an address
space snapshot before and after an attack (the checkpoint stream makes both
O(dirty)), persist each as a *sparse* file — only the blocks ever touched
are stored, untouched blocks are zero by the substrate's invariant — and
diff them to see exactly which 4 KiB blocks the attack dirtied.  Paired with
per-site error counts from a trace export, the diff answers "how far did
the corruption actually spread, and through which sites?".

File format (``repro-snapshot/v1``): one JSON header line (segment layout,
epoch, counters, per-segment stored-block indices, an optional free-text
label), followed by the raw block payloads concatenated in header order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.memory.address_space import DIRTY_BLOCK, AddressSpaceCheckpoint

FORMAT = "repro-snapshot/v1"


def _segment_blocks(size: int) -> int:
    return -(-size // DIRTY_BLOCK)


def save_snapshot(
    path: str, cp: AddressSpaceCheckpoint, label: str = ""
) -> Dict[str, int]:
    """Write one checkpoint to ``path`` sparsely; returns size accounting.

    Only the blocks listed in ``touched_blocks`` are stored (every other
    block is all zeros by the substrate invariant).  Checkpoints without
    touched-block data store every block.  Returns ``{"blocks": n,
    "payload_bytes": n}`` for the caller's reporting.
    """
    touched_map = dict(cp.touched_blocks)
    header: Dict[str, object] = {
        "format": FORMAT,
        "label": label,
        "epoch": cp.epoch,
        "raw_reads": cp.raw_reads,
        "raw_writes": cp.raw_writes,
        "segments": [],
    }
    payloads: List[bytes] = []
    blocks_stored = 0
    for name, base, contents in cp.segments:
        size = len(contents)
        stored = touched_map.get(name)
        if stored is None:
            stored = tuple(range(_segment_blocks(size)))
        else:
            stored = tuple(sorted(stored))
        header["segments"].append(
            {"name": name, "base": base, "size": size, "blocks": list(stored)}
        )
        for block in stored:
            start = block * DIRTY_BLOCK
            payloads.append(bytes(contents[start : start + DIRTY_BLOCK]))
            blocks_stored += 1
    with open(path, "wb") as handle:
        handle.write(json.dumps(header).encode("utf-8") + b"\n")
        for payload in payloads:
            handle.write(payload)
    return {
        "blocks": blocks_stored,
        "payload_bytes": sum(len(p) for p in payloads),
    }


def load_snapshot(path: str) -> Tuple[AddressSpaceCheckpoint, str]:
    """Read a :func:`save_snapshot` file back; returns ``(checkpoint, label)``.

    The returned checkpoint has fully materialized segment payloads
    (unstored blocks zero-filled) and exact ``touched_blocks``, so it diffs,
    restores, and compares like any live checkpoint.
    """
    with open(path, "rb") as handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line)
        except ValueError:
            raise ValueError(f"{path} is not a {FORMAT} snapshot") from None
        if not isinstance(header, dict) or header.get("format") != FORMAT:
            raise ValueError(f"{path} is not a {FORMAT} snapshot")
        segments = []
        touched_blocks = []
        for meta in header["segments"]:
            size = int(meta["size"])
            data = bytearray(size)
            for block in meta["blocks"]:
                start = block * DIRTY_BLOCK
                want = min(DIRTY_BLOCK, size - start)
                payload = handle.read(want)
                if len(payload) != want:
                    raise ValueError(f"{path} is truncated")
                data[start : start + want] = payload
            segments.append((meta["name"], int(meta["base"]), bytes(data)))
            touched_blocks.append(
                (meta["name"], tuple(int(b) for b in meta["blocks"]))
            )
    cp = AddressSpaceCheckpoint(
        epoch=int(header["epoch"]),
        segments=tuple(segments),
        raw_reads=int(header["raw_reads"]),
        raw_writes=int(header["raw_writes"]),
        touched_blocks=tuple(touched_blocks),
    )
    return cp, str(header.get("label", ""))


@dataclass(frozen=True)
class SnapshotDiff:
    """Block-level difference between two snapshots of one layout.

    ``segments`` maps segment name to ``(base, changed block indices)``;
    segments with no changed blocks are omitted.
    """

    segments: Tuple[Tuple[str, int, Tuple[int, ...]], ...]
    a_label: str = ""
    b_label: str = ""

    @property
    def changed_blocks(self) -> int:
        """Total number of blocks that differ."""
        return sum(len(blocks) for _name, _base, blocks in self.segments)

    @property
    def changed_bytes(self) -> int:
        """Upper bound on differing bytes (block granularity)."""
        return self.changed_blocks * DIRTY_BLOCK


def diff_snapshots(
    a: AddressSpaceCheckpoint,
    b: AddressSpaceCheckpoint,
    a_label: str = "",
    b_label: str = "",
) -> SnapshotDiff:
    """Byte-compare two snapshots block by block.

    Candidates are the union of both sides' touched blocks (a block neither
    side ever wrote is zero on both); each candidate is then actually
    compared, so rewriting a block with identical bytes does not count.
    The two snapshots must map the same segments at the same bases/sizes.
    """
    layout_a = {name: (base, len(data)) for name, base, data in a.segments}
    layout_b = {name: (base, len(data)) for name, base, data in b.segments}
    if layout_a != layout_b:
        raise ValueError(
            "snapshots map different segment layouts; diffing is meaningless"
        )
    touched_a = dict(a.touched_blocks)
    touched_b = dict(b.touched_blocks)
    contents_a = {name: data for name, _base, data in a.segments}
    contents_b = {name: data for name, _base, data in b.segments}
    out = []
    for name, (base, size) in sorted(layout_a.items(), key=lambda kv: kv[1][0]):
        if name in touched_a and name in touched_b:
            candidates = sorted(set(touched_a[name]) | set(touched_b[name]))
        else:
            candidates = range(_segment_blocks(size))
        data_a = contents_a[name]
        data_b = contents_b[name]
        changed = tuple(
            block
            for block in candidates
            if bytes(data_a[block * DIRTY_BLOCK : (block + 1) * DIRTY_BLOCK])
            != bytes(data_b[block * DIRTY_BLOCK : (block + 1) * DIRTY_BLOCK])
        )
        if changed:
            out.append((name, base, changed))
    return SnapshotDiff(
        segments=tuple(out), a_label=a_label, b_label=b_label
    )


def _runs(blocks: Tuple[int, ...]):
    start = prev = blocks[0]
    for block in blocks[1:]:
        if block != prev + 1:
            yield start, prev
            start = block
        prev = block
    yield start, prev


def format_diff(
    diff: SnapshotDiff,
    site_counts: Optional[Dict[str, int]] = None,
) -> str:
    """Render a diff (and optional per-site error counts) for the terminal."""
    lines = []
    labels = " -> ".join(label for label in (diff.a_label, diff.b_label) if label)
    if labels:
        lines.append(f"diff: {labels}")
    if not diff.segments:
        lines.append("no blocks differ")
        return "\n".join(lines)
    lines.append(
        f"{diff.changed_blocks} block(s) of {DIRTY_BLOCK} bytes differ"
    )
    for name, base, blocks in diff.segments:
        lines.append(f"  {name} ({len(blocks)} block(s)):")
        for start, end in _runs(blocks):
            lo = base + start * DIRTY_BLOCK
            hi = base + (end + 1) * DIRTY_BLOCK
            count = end - start + 1
            span = f"block {start}" if count == 1 else f"blocks {start}-{end}"
            lines.append(f"    {span}  [{lo:#010x}, {hi:#010x})")
    if site_counts:
        lines.append("memory errors by site (from trace):")
        ranked = sorted(site_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        for site, count in ranked:
            lines.append(f"  {count:8d}  {site}")
    return "\n".join(lines)
