"""The self-healing layer: snapshot cadences, rollback recovery, forensics.

Built on the incremental checkpoint streams
(:class:`~repro.memory.checkpoint_stream.CheckpointStream`):

* :class:`~repro.recovery.supervisor.RecoverySupervisor` wraps any
  :class:`~repro.servers.base.Server` with a snapshot cadence and replaces
  boot-image restarts with last-good-snapshot rollbacks, bounded retries,
  poison-request quarantine, and loop-degradation back to the boot image.
* :class:`~repro.recovery.faults.FaultInjector` drives every recovery path
  deterministically: seeded aborts, failed allocations, and heap-metadata
  corruption at fixed points in the request lifecycle.
* :mod:`repro.recovery.forensics` saves snapshots to disk and diffs them
  block by block (``repro forensics diff``) — the corruption-propagation
  measurement the paper never had.
"""

from repro.recovery.faults import FAULT_KINDS, FaultInjector, FaultPlan
from repro.recovery.forensics import (
    SnapshotDiff,
    diff_snapshots,
    format_diff,
    load_snapshot,
    save_snapshot,
)
from repro.recovery.supervisor import RecoveryPolicy, RecoverySupervisor

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "RecoveryPolicy",
    "RecoverySupervisor",
    "SnapshotDiff",
    "diff_snapshots",
    "format_diff",
    "load_snapshot",
    "save_snapshot",
]
