"""Rollback-recovery supervision: snapshot cadence, retry, quarantine.

The paper's serving model restarts a dead server from its boot image,
losing every request since boot.  :class:`RecoverySupervisor` wraps a
:class:`~repro.servers.base.Server` with the incremental checkpoint stream
so a fatal fault costs only the work since the *last snapshot*:

1. every ``snapshot_every`` successful requests, take an O(dirty-blocks)
   snapshot (memory via :class:`~repro.memory.checkpoint_stream.CheckpointStream`,
   handler state via :meth:`Server.capture_handler_state`), emitting
   :class:`~repro.telemetry.events.SnapshotTaken`;
2. on a fatal request, roll back to the last snapshot
   (:class:`~repro.telemetry.events.RollbackPerformed`), accumulate
   *virtual-time* exponential backoff (no real sleeping — the fleet's clock
   is virtual), and retry the request up to ``retry_budget`` times;
3. a request that stays fatal through its budget is *quarantined*
   (:class:`~repro.telemetry.events.RequestQuarantined`): its terminal
   disposition flows through the event stream exactly like the fleet's
   boot-fatal drops, and the server — already rolled back — keeps serving;
4. ``loop_threshold`` consecutive recoveries without a single successful
   request degrade to a full boot-image restart
   (``RollbackPerformed(to_boot_image=True)``) and a fresh stream — the
   escape hatch for a snapshot that itself captured corrupted state.

Tally invariant (what makes ``fleet report`` exact from an export): every
fatal attempt's ``RequestEnd`` is followed by exactly one
``RollbackPerformed`` carrying that ``request_id`` — consumers cancel the
attempt's failure count, because retry or quarantine is the terminal word
on that request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import RequestResult
from repro.memory.checkpoint_stream import CheckpointStream
from repro.recovery.faults import FaultInjector
from repro.servers.base import Request, Server
from repro.telemetry.events import (
    RequestQuarantined,
    RollbackPerformed,
    SnapshotTaken,
)


@dataclass(frozen=True)
class RecoveryPolicy:
    """Tuning knobs for one supervised server."""

    #: Take a snapshot every N successfully completed requests (1 = every
    #: request; the cadence/coverage trade-off the benchmarks measure).
    snapshot_every: int = 32
    #: Fatal retries per request.  A request whose fatal attempts exceed the
    #: budget (i.e. it killed the server ``retry_budget + 1`` times) is
    #: quarantined; the default quarantines on the second kill.
    retry_budget: int = 1
    #: Consecutive recoveries with no successful request in between that
    #: trigger the boot-image degradation.
    loop_threshold: int = 4
    #: Virtual-time backoff: ``backoff_base * backoff_factor**(attempt-1)``
    #: seconds accumulated per recovery (never slept — the soak clock is
    #: virtual).
    backoff_base: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.snapshot_every <= 0:
            raise ValueError("snapshot_every must be positive")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if self.loop_threshold <= 1:
            raise ValueError("loop_threshold must be > 1")


class RecoverySupervisor:
    """Self-healing wrapper around one started server.

    The server must be alive and started; construction takes the base
    snapshot (snapshot 0) immediately.  All request traffic must then go
    through :meth:`submit` — processing requests behind the supervisor's
    back would desynchronize the snapshot chain (the stream detects this
    and refuses to append).
    """

    def __init__(
        self,
        server: Server,
        policy: Optional[RecoveryPolicy] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        if not server.alive or not server.started:
            raise ValueError("supervision requires a started, live server")
        self.server = server
        self.policy = policy or RecoveryPolicy()
        self.injector = injector
        if injector is not None:
            injector.install(server)
        self.stream = CheckpointStream(server.ctx)
        #: Handler-state snapshots, parallel to the stream's indices.
        self._states: List[dict] = [server.capture_handler_state()]
        self._since_snapshot = 0
        self._consecutive_recoveries = 0
        # Lifetime counters (monotonic; rollbacks do not rewind them).
        self.snapshots_taken = 0
        self.rollbacks = 0
        self.boot_restarts = 0
        self.quarantined = 0
        self.retried_ok = 0
        self.virtual_backoff_seconds = 0.0

    # -- the serving loop ---------------------------------------------------------

    def submit(self, request: Request) -> RequestResult:
        """Process one request under supervision.

        Returns the terminal :class:`~repro.errors.RequestResult`: the
        successful attempt's result, or the last fatal attempt's when the
        request was quarantined.  Either way the server is alive afterwards.
        """
        attempt = 0
        while True:
            if self.injector is not None:
                self.injector.begin_attempt(self.server, request, attempt)
            result = self.server.process(request)
            if self.injector is not None:
                self.injector.end_attempt(self.server)
            attempt += 1
            if not result.fatal:
                if attempt > 1:
                    self.retried_ok += 1
                self._consecutive_recoveries = 0
                self._since_snapshot += 1
                if self._since_snapshot >= self.policy.snapshot_every:
                    self.take_snapshot(request_id=request.request_id)
                return result
            self._recover(request, attempt)
            if attempt > self.policy.retry_budget:
                self.quarantined += 1
                self.server.ctx.bus.emit(RequestQuarantined(
                    request_id=request.request_id,
                    kind=request.kind,
                    is_attack=request.is_attack,
                    attempts=attempt,
                ))
                return result

    def take_snapshot(self, request_id: Optional[int] = None) -> int:
        """Capture a snapshot now (memory delta + handler state) and emit it."""
        index = self.stream.snapshot()
        delta = self.stream.deltas[index - 1]
        self._states.append(self.server.capture_handler_state())
        self._since_snapshot = 0
        self.snapshots_taken += 1
        self.server.ctx.bus.emit(SnapshotTaken(
            index=index,
            blocks=delta.space.block_count,
            delta_bytes=delta.space.payload_bytes,
            request_id=request_id,
        ))
        return index

    # -- recovery -----------------------------------------------------------------

    def _recover(self, request: Request, attempt: int) -> None:
        """Bring the dead server back: snapshot rollback or boot-image restart.

        Emits exactly one :class:`RollbackPerformed` carrying the fatal
        request's id (its failed attempt is non-terminal — a retry or a
        quarantine is the terminal disposition).
        """
        policy = self.policy
        backoff = policy.backoff_base * policy.backoff_factor ** (attempt - 1)
        self.virtual_backoff_seconds += backoff
        self._consecutive_recoveries += 1
        if self._consecutive_recoveries >= policy.loop_threshold:
            # Rollback loop: the last-good snapshot may itself be poisoned.
            # Degrade to the boot image and start a fresh stream from it.
            self.server.restart()
            self.boot_restarts += 1
            self._consecutive_recoveries = 0
            self.stream = CheckpointStream(self.server.ctx)
            self._states = [self.server.capture_handler_state()]
            self._since_snapshot = 0
            self.server.ctx.bus.emit(RollbackPerformed(
                snapshot_index=0,
                request_id=request.request_id,
                kind=request.kind,
                is_attack=request.is_attack,
                blocks_restored=0,
                to_boot_image=True,
                backoff_virtual_seconds=backoff,
            ))
            return
        index = self.stream.latest
        blocks = self.stream.restore(index)
        self.server.restore_handler_state(self._states[index])
        del self._states[index + 1 :]
        self.server.alive = True
        self.server.started = True
        self.rollbacks += 1
        self.server.ctx.bus.emit(RollbackPerformed(
            snapshot_index=index,
            request_id=request.request_id,
            kind=request.kind,
            is_attack=request.is_attack,
            blocks_restored=blocks,
            to_boot_image=False,
            backoff_virtual_seconds=backoff,
        ))
