"""The optional memory-error log described in Section 3 of the paper.

    "To help make the errors more apparent, our compiler can optionally
    augment the generated code to produce a log containing information about
    the program's attempts to commit memory errors."

The log is a bounded, structured record of :class:`~repro.errors.MemoryErrorEvent`
objects.  The stability experiments (§4.4.4, §4.5.4) read this log to make the
same observations the authors made — e.g. that Sendmail commits a memory error
every time its daemon wakes up, and that Midnight Commander commits one for
every blank line in its configuration file.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, List, Optional

from repro.errors import AccessKind, ErrorKind, MemoryErrorEvent


class MemoryErrorLog:
    """Bounded, queryable log of attempted memory errors.

    Parameters
    ----------
    capacity:
        Maximum number of events retained.  Older events are dropped first,
        but aggregate counters keep counting, so long stability runs stay
        cheap while still reporting totals.
    """

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: List[MemoryErrorEvent] = []
        self._dropped = 0
        self._total = 0
        self._by_site: Counter = Counter()
        self._by_kind: Counter = Counter()
        self._by_access: Counter = Counter()

    def record(self, event: MemoryErrorEvent) -> None:
        """Append one event, evicting the oldest if the log is full."""
        self._total += 1
        self._by_site[event.site] += 1
        self._by_kind[event.kind] += 1
        self._by_access[event.access] += 1
        self._events.append(event)
        if len(self._events) > self.capacity:
            self._events.pop(0)
            self._dropped += 1

    def extend(self, events: Iterable[MemoryErrorEvent]) -> None:
        """Record a batch of events."""
        for event in events:
            self.record(event)

    def clear(self) -> None:
        """Discard all recorded events and reset counters."""
        self._events.clear()
        self._dropped = 0
        self._total = 0
        self._by_site.clear()
        self._by_kind.clear()
        self._by_access.clear()

    # -- queries ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[MemoryErrorEvent]:
        return iter(self._events)

    @property
    def total_recorded(self) -> int:
        """Number of events recorded over the log's lifetime (including evicted)."""
        return self._total

    @property
    def dropped(self) -> int:
        """Number of events evicted because the log was full."""
        return self._dropped

    def events(self) -> List[MemoryErrorEvent]:
        """Return a copy of the retained events, oldest first."""
        return list(self._events)

    def count_by_site(self) -> Counter:
        """Return error counts keyed by source site label."""
        return Counter(self._by_site)

    def count_by_kind(self) -> Counter:
        """Return error counts keyed by :class:`~repro.errors.ErrorKind`."""
        return Counter(self._by_kind)

    def count_reads(self) -> int:
        """Return how many invalid reads were recorded."""
        return self._by_access.get(AccessKind.READ, 0)

    def count_writes(self) -> int:
        """Return how many invalid writes were recorded."""
        return self._by_access.get(AccessKind.WRITE, 0)

    def events_for_request(self, request_id: int) -> List[MemoryErrorEvent]:
        """Return retained events tagged with the given request id."""
        return [e for e in self._events if e.request_id == request_id]

    def most_common_sites(self, n: int = 5) -> List[tuple]:
        """Return the ``n`` sites with the most recorded errors."""
        return self._by_site.most_common(n)

    def summary(self) -> str:
        """Return a multi-line human readable summary, as an administrator would read."""
        lines = [
            f"memory error log: {self._total} error(s) recorded"
            + (f" ({self._dropped} evicted)" if self._dropped else "")
        ]
        for kind, count in sorted(self._by_kind.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {kind.value}: {count}")
        for site, count in self._by_site.most_common(5):
            lines.append(f"  site {site or '<unknown>'}: {count}")
        return "\n".join(lines)

    def find(
        self,
        kind: Optional[ErrorKind] = None,
        site_substring: Optional[str] = None,
    ) -> List[MemoryErrorEvent]:
        """Return retained events matching the given filters."""
        result = []
        for event in self._events:
            if kind is not None and event.kind is not kind:
                continue
            if site_substring is not None and site_substring not in event.site:
                continue
            result.append(event)
        return result
