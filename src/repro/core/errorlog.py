"""The optional memory-error log described in Section 3 of the paper.

    "To help make the errors more apparent, our compiler can optionally
    augment the generated code to produce a log containing information about
    the program's attempts to commit memory errors."

Since the telemetry refactor this class is a *compatibility façade* over the
unified event stream: :meth:`MemoryErrorLog.record` publishes an
:class:`~repro.telemetry.events.InvalidAccess` event on the log's
:class:`~repro.telemetry.bus.EventBus`, and every query reads back from the
bounded :class:`~repro.telemetry.sinks.CoalescingRingSink` and aggregate
:class:`~repro.telemetry.sinks.CounterSink` the façade keeps attached to that
bus.  The answers are bit-identical to the pre-refactor log (the equivalence
is asserted by ``tests/test_telemetry.py``), but the same events now also
reach any experiment sinks and JSONL export sessions attached to the bus.

The stability experiments (§4.4.4, §4.5.4) read this log to make the same
observations the authors made — e.g. that Sendmail commits a memory error
every time its daemon wakes up, and that Midnight Commander commits one for
every blank line in its configuration file.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, List, Optional

from repro.errors import AccessKind, ErrorKind, MemoryErrorEvent
from repro.telemetry.bus import EventBus
from repro.telemetry.events import InvalidAccess
from repro.telemetry.sinks import CoalescingRingSink, CounterSink


class MemoryErrorLog:
    """Bounded, queryable log of attempted memory errors.

    Parameters
    ----------
    capacity:
        Maximum number of events retained.  Older events are dropped first,
        but aggregate counters keep counting, so long stability runs stay
        cheap while still reporting totals.  Storage coalesces runs of
        repeated same-site events (attack floods hitting the per-byte
        out-of-bounds fallback), so retention is bounded by ``capacity``
        events but costs one object per *run*.
    bus:
        The event bus this log records through.  A fresh private bus is
        created when omitted, so standalone ``MemoryErrorLog()`` construction
        keeps working exactly as before the telemetry refactor.
    """

    def __init__(self, capacity: int = 10_000, bus: Optional[EventBus] = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.bus = bus if bus is not None else EventBus()
        self._ring = CoalescingRingSink(capacity)
        self._counts = CounterSink()
        self.bus.attach(self._ring)
        self.bus.attach(self._counts)

    def record(self, event: MemoryErrorEvent) -> None:
        """Publish one event on the bus (the ring evicts the oldest when full)."""
        self.bus.emit(InvalidAccess(error=event))

    def record_run(self, event: MemoryErrorEvent, count: int, stride: int = 1) -> None:
        """Publish a contiguous run of ``count`` per-byte events in one record.

        Equivalent to recording ``count`` copies of ``event`` whose offsets
        step by ``stride`` — every query answers identically — but the ring
        stores the run directly and aggregate counters add ``count`` once,
        which is what makes the batched out-of-bounds continuation as cheap
        per span as a single event.
        """
        if count <= 0:
            return
        self.bus.emit(InvalidAccess(error=event, count=count, stride=stride))

    def extend(self, events: Iterable[MemoryErrorEvent]) -> None:
        """Record a batch of events."""
        for event in events:
            self.record(event)

    def clear(self) -> None:
        """Discard all recorded events and reset counters."""
        self._ring.clear()
        self._counts.clear()

    def checkpoint(self) -> tuple:
        """Snapshot the ring and the aggregate counters (pure data)."""
        return (self._ring.checkpoint(), self._counts.checkpoint())

    def restore(self, cp: tuple) -> None:
        """Reset ring and counters to a snapshot taken by :meth:`checkpoint`.

        Every query answers exactly as it did at checkpoint time; sinks other
        than the façade's own pair are untouched (external observers are the
        server's concern — it replays the boot event stream to them).
        """
        ring_cp, counts_cp = cp
        self._ring.restore(ring_cp)
        self._counts.restore(counts_cp)

    # -- queries ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[MemoryErrorEvent]:
        return iter(self._ring.events())

    @property
    def total_recorded(self) -> int:
        """Number of events recorded over the log's lifetime (including evicted)."""
        return self._counts.invalid_total

    @property
    def dropped(self) -> int:
        """Number of events evicted because the log was full."""
        return self._ring.dropped

    def events(self) -> List[MemoryErrorEvent]:
        """Return a copy of the retained events, oldest first."""
        return self._ring.events()

    def tail(self, n: int) -> List[MemoryErrorEvent]:
        """Return the newest ``n`` retained events in O(n), oldest first.

        Equivalent to ``events()[-n:]`` without expanding the whole ring;
        the per-request attribution in ``Server._execute`` leans on this.
        """
        return self._ring.tail(n)

    def count_by_site(self) -> Counter:
        """Return error counts keyed by source site label."""
        return Counter(self._counts.invalid_by_site)

    def count_by_kind(self) -> Counter:
        """Return error counts keyed by :class:`~repro.errors.ErrorKind`."""
        return Counter(self._counts.invalid_by_kind)

    def count_reads(self) -> int:
        """Return how many invalid reads were recorded."""
        return self._counts.invalid_by_access.get(AccessKind.READ, 0)

    def count_writes(self) -> int:
        """Return how many invalid writes were recorded."""
        return self._counts.invalid_by_access.get(AccessKind.WRITE, 0)

    def events_for_request(self, request_id: int) -> List[MemoryErrorEvent]:
        """Return retained events tagged with the given request id."""
        return [e for e in self._ring.events() if e.request_id == request_id]

    def most_common_sites(self, n: int = 5) -> List[tuple]:
        """Return the ``n`` sites with the most recorded errors."""
        return self._counts.invalid_by_site.most_common(n)

    def summary(self) -> str:
        """Return a multi-line human readable summary, as an administrator would read."""
        lines = [
            f"memory error log: {self.total_recorded} error(s) recorded"
            + (f" ({self.dropped} evicted)" if self.dropped else "")
        ]
        for kind, count in sorted(
            self._counts.invalid_by_kind.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {kind.value}: {count}")
        for site, count in self._counts.invalid_by_site.most_common(5):
            lines.append(f"  site {site or '<unknown>'}: {count}")
        return "\n".join(lines)

    def find(
        self,
        kind: Optional[ErrorKind] = None,
        site_substring: Optional[str] = None,
    ) -> List[MemoryErrorEvent]:
        """Return retained events matching the given filters."""
        result = []
        for event in self._ring.events():
            if kind is not None and event.kind is not kind:
                continue
            if site_substring is not None and site_substring not in event.site:
                continue
            result.append(event)
        return result
