"""Concrete build variants: Standard, Bounds Check, Failure Oblivious, and §5.1 variants.

Each class corresponds to one compiler configuration evaluated in the paper:

* :class:`StandardPolicy` — the stock, unchecked C build.  Out-of-bounds
  accesses are performed raw against the simulated address space, so they
  corrupt neighbouring data units, heap metadata, or the call stack, exactly
  like the real servers did.
* :class:`BoundsCheckPolicy` — the CRED safe-C build.  The first detected
  memory error raises :class:`~repro.errors.BoundsCheckViolation`, which the
  server loop treats as process termination.
* :class:`FailureObliviousPolicy` — the paper's contribution.  Invalid writes
  are discarded, invalid reads return manufactured values, execution continues.
* :class:`BoundlessPolicy` — §5.1 boundless memory blocks: invalid writes are
  stored in a hash table keyed by (data unit, offset) and invalid reads return
  the stored value when one exists.
* :class:`RedirectPolicy` — §5.1 redirect variant: out-of-bounds accesses are
  wrapped back into the accessed data unit at ``offset % size``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.errorlog import MemoryErrorLog
from repro.core.manufacture import ManufacturedValueSequence
from repro.core.policy import AccessDecision, AccessPolicy
from repro.errors import BoundsCheckViolation, MemoryErrorEvent, UseAfterFree, ErrorKind
from repro.telemetry.events import Discard, Manufacture, Redirect


class StandardPolicy(AccessPolicy):
    """The unchecked build: no bounds checks, raw (possibly corrupting) accesses.

    The memory accessor never calls the invalid-access hooks for this policy
    because ``performs_checks`` is False; they are implemented anyway (raw
    pass-through) so the policy still behaves sensibly if used with a checking
    accessor in tests.
    """

    name = "standard"
    performs_checks = False

    def on_invalid_read(self, event: MemoryErrorEvent, length: int) -> AccessDecision:
        self.record_event(event)
        return AccessDecision.perform_raw()

    def on_invalid_write(self, event: MemoryErrorEvent, data: bytes) -> AccessDecision:
        self.record_event(event)
        return AccessDecision.perform_raw()


class BoundsCheckPolicy(AccessPolicy):
    """The CRED safe-C build: terminate with an error message at the first error."""

    name = "bounds-check"
    performs_checks = True

    def on_invalid_read(self, event: MemoryErrorEvent, length: int) -> AccessDecision:
        self.record_event(event)
        return AccessDecision.raise_(self._exception_for(event))

    def on_invalid_write(self, event: MemoryErrorEvent, data: bytes) -> AccessDecision:
        self.record_event(event)
        return AccessDecision.raise_(self._exception_for(event))

    @staticmethod
    def _exception_for(event: MemoryErrorEvent) -> BaseException:
        if event.kind is ErrorKind.USE_AFTER_FREE:
            return UseAfterFree(event)
        return BoundsCheckViolation(event)


class FailureObliviousPolicy(AccessPolicy):
    """The failure-oblivious build: discard invalid writes, manufacture reads.

    Parameters
    ----------
    sequence:
        Generator of manufactured values.  Defaults to the paper's sequence
        (small integers, 0 and 1 favoured).  Ablation benchmarks pass the
        degenerate sequences from :mod:`repro.core.manufacture`.
    error_log:
        Optional shared memory-error log (the §3 administrator log).
    """

    name = "failure-oblivious"
    performs_checks = True

    def __init__(
        self,
        error_log: Optional[MemoryErrorLog] = None,
        sequence: Optional[ManufacturedValueSequence] = None,
    ) -> None:
        super().__init__(error_log=error_log)
        self.sequence = sequence if sequence is not None else ManufacturedValueSequence()

    def on_invalid_read(self, event: MemoryErrorEvent, length: int) -> AccessDecision:
        self.record_event(event)
        data = self.sequence.next_bytes(length)
        self.stats.manufactured_values += length
        self.emit(Manufacture(length=length, site=event.site, request_id=event.request_id))
        return AccessDecision.supply(data)

    def on_invalid_write(self, event: MemoryErrorEvent, data: bytes) -> AccessDecision:
        self.record_event(event)
        self.stats.discarded_bytes += len(data)
        self.emit(Discard(length=len(data), site=event.site, request_id=event.request_id))
        return AccessDecision.discard()


class BoundlessPolicy(FailureObliviousPolicy):
    """§5.1 boundless memory blocks: out-of-bounds writes are remembered.

    Invalid writes are stored in a hash table indexed by the data unit identity
    and byte offset; invalid reads first consult the table and fall back to the
    manufactured value sequence for bytes that were never written.  This
    "eliminates size calculation errors" — a program whose only mistake is an
    undersized buffer behaves as if the buffer were large enough.
    """

    name = "boundless"

    def __init__(
        self,
        error_log: Optional[MemoryErrorLog] = None,
        sequence: Optional[ManufacturedValueSequence] = None,
        max_stored_bytes: int = 1 << 20,
    ) -> None:
        super().__init__(error_log=error_log, sequence=sequence)
        self.max_stored_bytes = max_stored_bytes
        self._store: Dict[Tuple[str, int, int], int] = {}

    def _key(self, event: MemoryErrorEvent, offset: int) -> Tuple[str, int, int]:
        # unit_name alone is not unique (many allocations share a label), so the
        # unit's size participates too; the accessor additionally passes a unique
        # unit serial through event.unit_name when available.
        return (event.unit_name, event.unit_size, offset)

    def on_invalid_write(self, event: MemoryErrorEvent, data: bytes) -> AccessDecision:
        self.record_event(event)
        # Overwriting an already-stored offset consumes no extra capacity and
        # must not inflate the stored-bytes statistic, so only the offsets not
        # yet in the table count against ``max_stored_bytes``.
        keys = [self._key(event, event.offset + i) for i in range(len(data))]
        new_bytes = sum(1 for key in keys if key not in self._store)
        if len(self._store) + new_bytes <= self.max_stored_bytes:
            for key, byte in zip(keys, data):
                self._store[key] = byte
            self.stats.stored_out_of_bounds_bytes += new_bytes
            # length counts only the newly stored offsets, mirroring
            # stats.stored_out_of_bounds_bytes, so trace summaries and the
            # paper-facing policy statistics agree; pure overwrites emit
            # nothing, like the zero-manufacture guard on the read path.
            if new_bytes:
                self.emit(Discard(length=new_bytes, site=event.site,
                                  request_id=event.request_id, stored=True))
            return AccessDecision.discard()
        # Store full: degrade gracefully to plain failure-oblivious behaviour.
        self.stats.discarded_bytes += len(data)
        self.emit(Discard(length=len(data), site=event.site, request_id=event.request_id))
        return AccessDecision.discard()

    def on_invalid_read(self, event: MemoryErrorEvent, length: int) -> AccessDecision:
        self.record_event(event)
        data = bytearray()
        manufactured = 0
        for i in range(length):
            key = self._key(event, event.offset + i)
            if key in self._store:
                data.append(self._store[key])
            else:
                data.append(self.sequence.next_byte())
                manufactured += 1
        if manufactured:
            self.stats.manufactured_values += manufactured
            self.emit(Manufacture(length=manufactured, site=event.site,
                                  request_id=event.request_id))
        return AccessDecision.supply(bytes(data))

    def stored_bytes(self) -> int:
        """Return how many out-of-bounds bytes are currently remembered."""
        return len(self._store)


class RedirectPolicy(AccessPolicy):
    """§5.1 redirect variant: wrap out-of-bounds accesses back into the unit.

    An access at offset ``o`` of an ``n``-byte unit is performed at
    ``o % n`` instead.  This keeps related out-of-bounds reads mutually
    consistent because they observe properly initialized data from the same
    unit.  Accesses to dead (freed) units cannot be redirected and fall back to
    failure-oblivious behaviour.
    """

    name = "redirect"
    performs_checks = True

    def __init__(
        self,
        error_log: Optional[MemoryErrorLog] = None,
        sequence: Optional[ManufacturedValueSequence] = None,
    ) -> None:
        super().__init__(error_log=error_log)
        self.sequence = sequence if sequence is not None else ManufacturedValueSequence()

    def on_invalid_read(self, event: MemoryErrorEvent, length: int) -> AccessDecision:
        self.record_event(event)
        if event.kind is ErrorKind.USE_AFTER_FREE or event.unit_size <= 0:
            data = self.sequence.next_bytes(length)
            self.stats.manufactured_values += length
            self.emit(Manufacture(length=length, site=event.site,
                                  request_id=event.request_id))
            return AccessDecision.supply(data)
        self.stats.redirected_accesses += 1
        target = event.offset % event.unit_size
        self.emit(Redirect(offset=event.offset, redirect_offset=target,
                           length=length, access=event.access.value,
                           site=event.site, request_id=event.request_id))
        return AccessDecision.redirect(target)

    def on_invalid_write(self, event: MemoryErrorEvent, data: bytes) -> AccessDecision:
        self.record_event(event)
        if event.kind is ErrorKind.USE_AFTER_FREE or event.unit_size <= 0:
            self.stats.discarded_bytes += len(data)
            self.emit(Discard(length=len(data), site=event.site,
                              request_id=event.request_id))
            return AccessDecision.discard()
        self.stats.redirected_accesses += 1
        target = event.offset % event.unit_size
        self.emit(Redirect(offset=event.offset, redirect_offset=target,
                           length=len(data), access=event.access.value,
                           site=event.site, request_id=event.request_id))
        return AccessDecision.redirect(target)


#: Registry of policy names used by the harness's command-line style configuration.
POLICY_NAMES = {
    "standard": StandardPolicy,
    "bounds-check": BoundsCheckPolicy,
    "failure-oblivious": FailureObliviousPolicy,
    "boundless": BoundlessPolicy,
    "redirect": RedirectPolicy,
}


def make_policy(name: str, **kwargs) -> AccessPolicy:
    """Instantiate a policy by its registry name.

    Raises
    ------
    KeyError
        If ``name`` is not one of :data:`POLICY_NAMES`.
    """
    try:
        cls = POLICY_NAMES[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; expected one of {sorted(POLICY_NAMES)}"
        ) from None
    return cls(**kwargs)
