"""Concrete build variants: Standard, Bounds Check, Failure Oblivious, and §5.1 variants.

Each class corresponds to one compiler configuration evaluated in the paper:

* :class:`StandardPolicy` — the stock, unchecked C build.  Out-of-bounds
  accesses are performed raw against the simulated address space, so they
  corrupt neighbouring data units, heap metadata, or the call stack, exactly
  like the real servers did.
* :class:`BoundsCheckPolicy` — the CRED safe-C build.  The first detected
  memory error raises :class:`~repro.errors.BoundsCheckViolation`, which the
  server loop treats as process termination.
* :class:`FailureObliviousPolicy` — the paper's contribution.  Invalid writes
  are discarded, invalid reads return manufactured values, execution continues.
* :class:`BoundlessPolicy` — §5.1 boundless memory blocks: invalid writes are
  stored in a hash table keyed by (data unit, offset) and invalid reads return
  the stored value when one exists.
* :class:`RedirectPolicy` — §5.1 redirect variant: out-of-bounds accesses are
  wrapped back into the accessed data unit at ``offset % size``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.errorlog import MemoryErrorLog
from repro.core.manufacture import ManufacturedValueSequence
from repro.core.policy import AccessDecision, AccessPolicy
from repro.errors import BoundsCheckViolation, MemoryErrorEvent, UseAfterFree, ErrorKind
from repro.telemetry.events import AllocFree, Discard, Manufacture, Redirect
from repro.telemetry.sinks import Sink


class StandardPolicy(AccessPolicy):
    """The unchecked build: no bounds checks, raw (possibly corrupting) accesses.

    The memory accessor never calls the invalid-access hooks for this policy
    because ``performs_checks`` is False; they are implemented anyway (raw
    pass-through) so the policy still behaves sensibly if used with a checking
    accessor in tests.
    """

    name = "standard"
    performs_checks = False

    def on_invalid_read(self, event: MemoryErrorEvent, length: int) -> AccessDecision:
        self.record_event(event)
        return AccessDecision.perform_raw()

    def on_invalid_write(self, event: MemoryErrorEvent, data: bytes) -> AccessDecision:
        self.record_event(event)
        return AccessDecision.perform_raw()


class BoundsCheckPolicy(AccessPolicy):
    """The CRED safe-C build: terminate with an error message at the first error."""

    name = "bounds-check"
    performs_checks = True
    supports_runs = True
    supports_scan_runs = True

    def on_invalid_read(self, event: MemoryErrorEvent, length: int) -> AccessDecision:
        self.record_event(event)
        return AccessDecision.raise_(self._exception_for(event))

    def on_invalid_write(self, event: MemoryErrorEvent, data: bytes) -> AccessDecision:
        self.record_event(event)
        return AccessDecision.raise_(self._exception_for(event))

    # A per-byte loop terminates at its first byte, so a batched run records
    # exactly one single-byte event before raising — bit-identical logs.

    def on_invalid_read_run(self, event: MemoryErrorEvent, count: int) -> AccessDecision:
        return self.on_invalid_read(event, 1)

    def on_invalid_write_run(self, event: MemoryErrorEvent, data: bytes) -> AccessDecision:
        return self.on_invalid_write(event, data[:1])

    def scan_invalid_read_run(self, event, count, until):
        return self.on_invalid_read(event, 1)

    @staticmethod
    def _exception_for(event: MemoryErrorEvent) -> BaseException:
        if event.kind is ErrorKind.USE_AFTER_FREE:
            return UseAfterFree(event)
        return BoundsCheckViolation(event)


class FailureObliviousPolicy(AccessPolicy):
    """The failure-oblivious build: discard invalid writes, manufacture reads.

    Parameters
    ----------
    sequence:
        Generator of manufactured values.  Defaults to the paper's sequence
        (small integers, 0 and 1 favoured).  Ablation benchmarks pass the
        degenerate sequences from :mod:`repro.core.manufacture`.
    error_log:
        Optional shared memory-error log (the §3 administrator log).
    """

    name = "failure-oblivious"
    performs_checks = True
    supports_runs = True
    supports_scan_runs = True

    def __init__(
        self,
        error_log: Optional[MemoryErrorLog] = None,
        sequence: Optional[ManufacturedValueSequence] = None,
    ) -> None:
        super().__init__(error_log=error_log)
        self.sequence = sequence if sequence is not None else ManufacturedValueSequence()

    def on_invalid_read(self, event: MemoryErrorEvent, length: int) -> AccessDecision:
        self.record_event(event)
        data = self.sequence.next_bytes(length)
        self.stats.manufactured_values += length
        self.emit(Manufacture(length=length, site=event.site, request_id=event.request_id))
        return AccessDecision.supply(data)

    def on_invalid_write(self, event: MemoryErrorEvent, data: bytes) -> AccessDecision:
        self.record_event(event)
        self.stats.discarded_bytes += len(data)
        self.emit(Discard(length=len(data), site=event.site, request_id=event.request_id))
        return AccessDecision.discard()

    # -- batched runs: one decision per contiguous out-of-bounds suffix ----------

    def on_invalid_read_run(self, event: MemoryErrorEvent, count: int) -> AccessDecision:
        self.record_event_run(event, count)
        data = self.sequence.next_bytes(count)
        self.stats.manufactured_values += count
        self.emit(Manufacture(length=count, count=count, site=event.site,
                              request_id=event.request_id))
        return AccessDecision.supply(data)

    def on_invalid_write_run(self, event: MemoryErrorEvent, data: bytes) -> AccessDecision:
        count = len(data)
        self.record_event_run(event, count)
        self.stats.discarded_bytes += count
        self.emit(Discard(length=count, count=count, site=event.site,
                          request_id=event.request_id))
        return AccessDecision.discard()

    def scan_invalid_read_run(self, event, count, until):
        # Manufactured bytes are produced one at a time and stop after the
        # first terminator, so the sequence consumption (and the number of
        # per-byte events recorded) is exactly what the per-byte loop does.
        out = bytearray()
        for _ in range(count):
            byte = self.sequence.next_byte()
            out.append(byte)
            if byte in until:
                break
        produced = len(out)
        if produced:
            self.record_event_run(event, produced)
            self.stats.manufactured_values += produced
            self.emit(Manufacture(length=produced, count=produced, site=event.site,
                                  request_id=event.request_id))
        return AccessDecision.supply(bytes(out))

    def checkpoint_state(self) -> dict:
        state = super().checkpoint_state()
        state["sequence"] = self.sequence.checkpoint()
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self.sequence.restore(state["sequence"])


class _BoundlessReclaimSink(Sink):
    """Bus listener that releases a freed unit's boundless side store.

    Attached by :class:`BoundlessPolicy` to its own bus, on which the heap
    allocator publishes :class:`~repro.telemetry.events.AllocFree`; a ``free``
    drops every byte stored for that unit, so long soaks no longer leak
    toward ``max_stored_bytes`` and silently degrade to discard mode.

    Heap frees only: stack locals die by frame pop, which never reaches the
    bus.  :class:`~repro.memory.context.MemoryContext` therefore additionally
    wires :meth:`BoundlessPolicy.release_unit` to the object table's death
    hook, the single choke point both heap and stack retirement go through;
    this sink remains for policies used standalone (no context) whose events
    arrive over a shared bus.  Releasing twice is a harmless no-op.
    """

    def __init__(self, policy: "BoundlessPolicy") -> None:
        self._policy = policy

    def emit(self, event: object) -> None:
        if isinstance(event, AllocFree) and event.op == "free":
            self._policy.release_unit(event.unit_name, event.size)


class BoundlessPolicy(FailureObliviousPolicy):
    """§5.1 boundless memory blocks: out-of-bounds writes are remembered.

    Invalid writes are stored in a per-unit hash table (unit identity →
    offset → byte); invalid reads first consult the table and fall back to
    the manufactured value sequence for bytes that were never written.  This
    "eliminates size calculation errors" — a program whose only mistake is an
    undersized buffer behaves as if the buffer were large enough.

    The per-unit nesting is what makes the batched continuation cheap: a run
    of out-of-bounds bytes resolves its unit bucket once and then works on
    plain integer offsets (one dict op per byte instead of tuple construction
    plus hashing per byte), bulk inserts take a single ``dict.update``, and
    freeing a unit releases its whole bucket in O(1).
    """

    name = "boundless"

    def __init__(
        self,
        error_log: Optional[MemoryErrorLog] = None,
        sequence: Optional[ManufacturedValueSequence] = None,
        max_stored_bytes: int = 1 << 20,
    ) -> None:
        super().__init__(error_log=error_log, sequence=sequence)
        self.max_stored_bytes = max_stored_bytes
        #: (unit_name, unit_size) → {offset: byte}.  The unit name carries the
        #: allocation serial (``DataUnit.label()``), so buckets are unique per
        #: allocation and can be reclaimed when the allocation is freed.
        self._store: Dict[Tuple[str, int], Dict[int, int]] = {}
        self._stored_total = 0
        self.bus.attach(_BoundlessReclaimSink(self))

    def _unit_store(self, event: MemoryErrorEvent, create: bool = False) -> Optional[Dict[int, int]]:
        key = (event.unit_name, event.unit_size)
        if create:
            return self._store.setdefault(key, {})
        return self._store.get(key)

    def on_invalid_write(self, event: MemoryErrorEvent, data: bytes) -> AccessDecision:
        self.record_event(event)
        # Overwriting an already-stored offset consumes no extra capacity and
        # must not inflate the stored-bytes statistic, so only the offsets not
        # yet in the table count against ``max_stored_bytes``.
        bucket = self._unit_store(event) or {}
        new_bytes = sum(1 for i in range(len(data)) if event.offset + i not in bucket)
        if self._stored_total + new_bytes <= self.max_stored_bytes:
            self._unit_store(event, create=True).update(
                (event.offset + i, byte) for i, byte in enumerate(data)
            )
            self._stored_total += new_bytes
            self.stats.stored_out_of_bounds_bytes += new_bytes
            # length counts only the newly stored offsets, mirroring
            # stats.stored_out_of_bounds_bytes, so trace summaries and the
            # paper-facing policy statistics agree; pure overwrites emit
            # nothing, like the zero-manufacture guard on the read path.
            if new_bytes:
                self.emit(Discard(length=new_bytes, site=event.site,
                                  request_id=event.request_id, stored=True))
            return AccessDecision.discard()
        # Store full: degrade gracefully to plain failure-oblivious behaviour.
        self.stats.discarded_bytes += len(data)
        self.emit(Discard(length=len(data), site=event.site, request_id=event.request_id))
        return AccessDecision.discard()

    def on_invalid_read(self, event: MemoryErrorEvent, length: int) -> AccessDecision:
        self.record_event(event)
        data, manufactured = self._lookup_bytes(event, length)
        if manufactured:
            self.stats.manufactured_values += manufactured
            self.emit(Manufacture(length=manufactured, site=event.site,
                                  request_id=event.request_id))
        return AccessDecision.supply(data)

    def _lookup_bytes(self, event: MemoryErrorEvent, length: int) -> Tuple[bytes, int]:
        """Stored-else-manufactured bytes for ``length`` offsets, in order."""
        bucket = self._unit_store(event)
        if not bucket:
            return self.sequence.next_bytes(length), length
        out = bytearray()
        manufactured = 0
        get = bucket.get
        for offset in range(event.offset, event.offset + length):
            byte = get(offset)
            if byte is None:
                byte = self.sequence.next_byte()
                manufactured += 1
            out.append(byte)
        return bytes(out), manufactured

    # -- batched runs -----------------------------------------------------------
    #
    # The run hooks reproduce the *per-byte* capacity semantics, not the
    # block hooks' all-or-nothing check: when the store is nearly full, a
    # per-byte loop stores the first bytes that fit and discards the rest,
    # and so does a batched run.

    def on_invalid_write_run(self, event: MemoryErrorEvent, data: bytes) -> AccessDecision:
        count = len(data)
        self.record_event_run(event, count)
        bucket = self._unit_store(event, create=True)
        offsets = range(event.offset, event.offset + count)
        stored_new = 0
        discarded = 0
        if self._stored_total + count <= self.max_stored_bytes:
            # Fast path: everything fits even if every offset is new.  One
            # C-level dict update; the new-offset count falls out of the
            # bucket growth.
            before = len(bucket)
            bucket.update(zip(offsets, data))
            stored_new = len(bucket) - before
            self._stored_total += stored_new
        elif self._stored_total >= self.max_stored_bytes:
            # Store already full: overwrites still land (they consume no
            # capacity), every new offset is discarded.
            if bucket:
                hits = bucket.keys() & frozenset(offsets)
                for offset in hits:
                    bucket[offset] = data[offset - event.offset]
                discarded = count - len(hits)
            else:
                discarded = count
        else:
            # Crossing capacity mid-run: byte-at-a-time accounting, exactly
            # like the per-byte fallback loop (overwrites always land; new
            # offsets land only while there is room).
            for i, byte in enumerate(data):
                offset = event.offset + i
                if offset in bucket:
                    bucket[offset] = byte
                elif self._stored_total < self.max_stored_bytes:
                    bucket[offset] = byte
                    self._stored_total += 1
                    stored_new += 1
                else:
                    discarded += 1
        if stored_new:
            self.stats.stored_out_of_bounds_bytes += stored_new
            self.emit(Discard(length=stored_new, count=stored_new, site=event.site,
                              request_id=event.request_id, stored=True))
        if discarded:
            self.stats.discarded_bytes += discarded
            self.emit(Discard(length=discarded, count=discarded, site=event.site,
                              request_id=event.request_id))
        return AccessDecision.discard()

    def on_invalid_read_run(self, event: MemoryErrorEvent, count: int) -> AccessDecision:
        self.record_event_run(event, count)
        data, manufactured = self._lookup_bytes(event, count)
        if manufactured:
            self.stats.manufactured_values += manufactured
            self.emit(Manufacture(length=manufactured, count=manufactured,
                                  site=event.site, request_id=event.request_id))
        return AccessDecision.supply(data)

    def scan_invalid_read_run(self, event, count, until):
        bucket = self._unit_store(event) or {}
        get = bucket.get
        out = bytearray()
        manufactured = 0
        for offset in range(event.offset, event.offset + count):
            byte = get(offset)
            if byte is None:
                byte = self.sequence.next_byte()
                manufactured += 1
            out.append(byte)
            if byte in until:
                break
        produced = len(out)
        if produced:
            self.record_event_run(event, produced)
            if manufactured:
                self.stats.manufactured_values += manufactured
                self.emit(Manufacture(length=manufactured, count=manufactured,
                                      site=event.site, request_id=event.request_id))
        return AccessDecision.supply(bytes(out))

    # -- store bookkeeping ------------------------------------------------------

    def release_unit(self, unit_name: str, unit_size: int) -> None:
        """Drop every stored byte keyed to a (freed) unit, releasing capacity."""
        bucket = self._store.pop((unit_name, unit_size), None)
        if bucket:
            self._stored_total -= len(bucket)

    def stored_bytes(self) -> int:
        """Return how many out-of-bounds bytes are currently remembered."""
        return self._stored_total

    def checkpoint_state(self) -> dict:
        state = super().checkpoint_state()
        state["store"] = {key: dict(bucket) for key, bucket in self._store.items()}
        state["stored_total"] = self._stored_total
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._store = {key: dict(bucket) for key, bucket in state["store"].items()}
        self._stored_total = state["stored_total"]


class RedirectPolicy(AccessPolicy):
    """§5.1 redirect variant: wrap out-of-bounds accesses back into the unit.

    An access at offset ``o`` of an ``n``-byte unit is performed at
    ``o % n`` instead.  This keeps related out-of-bounds reads mutually
    consistent because they observe properly initialized data from the same
    unit.  Accesses to dead (freed) units cannot be redirected and fall back to
    failure-oblivious behaviour.
    """

    name = "redirect"
    performs_checks = True
    supports_runs = True
    supports_scan_runs = True

    def __init__(
        self,
        error_log: Optional[MemoryErrorLog] = None,
        sequence: Optional[ManufacturedValueSequence] = None,
    ) -> None:
        super().__init__(error_log=error_log)
        self.sequence = sequence if sequence is not None else ManufacturedValueSequence()

    def on_invalid_read(self, event: MemoryErrorEvent, length: int) -> AccessDecision:
        self.record_event(event)
        if event.kind is ErrorKind.USE_AFTER_FREE or event.unit_size <= 0:
            data = self.sequence.next_bytes(length)
            self.stats.manufactured_values += length
            self.emit(Manufacture(length=length, site=event.site,
                                  request_id=event.request_id))
            return AccessDecision.supply(data)
        self.stats.redirected_accesses += 1
        target = event.offset % event.unit_size
        self.emit(Redirect(offset=event.offset, redirect_offset=target,
                           length=length, access=event.access.value,
                           site=event.site, request_id=event.request_id))
        return AccessDecision.redirect(target)

    def on_invalid_write(self, event: MemoryErrorEvent, data: bytes) -> AccessDecision:
        self.record_event(event)
        if event.kind is ErrorKind.USE_AFTER_FREE or event.unit_size <= 0:
            self.stats.discarded_bytes += len(data)
            self.emit(Discard(length=len(data), site=event.site,
                              request_id=event.request_id))
            return AccessDecision.discard()
        self.stats.redirected_accesses += 1
        target = event.offset % event.unit_size
        self.emit(Redirect(offset=event.offset, redirect_offset=target,
                           length=len(data), access=event.access.value,
                           site=event.site, request_id=event.request_id))
        return AccessDecision.redirect(target)

    # -- batched runs -----------------------------------------------------------
    #
    # A contiguous run of per-byte accesses at offsets o, o+1, ... lands at
    # (o + i) % size — i.e. exactly a wrapped contiguous range starting at
    # o % size, which the accessor's redirected bulk read/write reproduces.
    # One Redirect record carries the run (count per-byte accesses); the
    # redirected_accesses statistic counts each of them, like the loop did.

    def on_invalid_read_run(self, event: MemoryErrorEvent, count: int) -> AccessDecision:
        if event.kind is ErrorKind.USE_AFTER_FREE or event.unit_size <= 0:
            self.record_event_run(event, count)
            data = self.sequence.next_bytes(count)
            self.stats.manufactured_values += count
            self.emit(Manufacture(length=count, count=count, site=event.site,
                                  request_id=event.request_id))
            return AccessDecision.supply(data)
        self.record_event_run(event, count)
        self.stats.redirected_accesses += count
        target = event.offset % event.unit_size
        self.emit(Redirect(offset=event.offset, redirect_offset=target,
                           length=count, access=event.access.value, count=count,
                           site=event.site, request_id=event.request_id))
        return AccessDecision.redirect(target)

    def on_invalid_write_run(self, event: MemoryErrorEvent, data: bytes) -> AccessDecision:
        count = len(data)
        if event.kind is ErrorKind.USE_AFTER_FREE or event.unit_size <= 0:
            self.record_event_run(event, count)
            self.stats.discarded_bytes += count
            self.emit(Discard(length=count, count=count, site=event.site,
                              request_id=event.request_id))
            return AccessDecision.discard()
        self.record_event_run(event, count)
        self.stats.redirected_accesses += count
        target = event.offset % event.unit_size
        self.emit(Redirect(offset=event.offset, redirect_offset=target,
                           length=count, access=event.access.value, count=count,
                           site=event.site, request_id=event.request_id))
        return AccessDecision.redirect(target)

    # -- batched terminator scans: the preview/commit protocol -------------------
    #
    # The redirect policy's invalid-read bytes live *in the unit* (the access
    # wraps to offset % size), so the policy cannot produce the scan bytes
    # itself the way failure-oblivious and boundless do.  Instead it returns a
    # REDIRECT preview; the accessor scans the wrapped range with its own raw
    # reads — stopping exactly where the per-byte loop would — and commits the
    # consumed length back here, where the deferred per-byte recording
    # happens.  Dead and zero-sized units fall back to manufactured bytes, the
    # same continuation the scalar hook takes, so those scans batch too.

    def scan_invalid_read_run(self, event, count, until):
        if event.kind is ErrorKind.USE_AFTER_FREE or event.unit_size <= 0:
            out = bytearray()
            for _ in range(count):
                byte = self.sequence.next_byte()
                out.append(byte)
                if byte in until:
                    break
            produced = len(out)
            if produced:
                self.record_event_run(event, produced)
                self.stats.manufactured_values += produced
                self.emit(Manufacture(length=produced, count=produced, site=event.site,
                                      request_id=event.request_id))
            return AccessDecision.supply(bytes(out))
        return AccessDecision.redirect(event.offset % event.unit_size)

    def commit_scan_run(self, event: MemoryErrorEvent, consumed: int) -> None:
        if consumed <= 0:
            return
        self.record_event_run(event, consumed)
        self.stats.redirected_accesses += consumed
        target = event.offset % event.unit_size
        self.emit(Redirect(offset=event.offset, redirect_offset=target,
                           length=consumed, access=event.access.value, count=consumed,
                           site=event.site, request_id=event.request_id))

    def checkpoint_state(self) -> dict:
        state = super().checkpoint_state()
        state["sequence"] = self.sequence.checkpoint()
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self.sequence.restore(state["sequence"])


#: Registry of policy names used by the harness's command-line style configuration.
POLICY_NAMES = {
    "standard": StandardPolicy,
    "bounds-check": BoundsCheckPolicy,
    "failure-oblivious": FailureObliviousPolicy,
    "boundless": BoundlessPolicy,
    "redirect": RedirectPolicy,
}


def make_policy(name: str, **kwargs) -> AccessPolicy:
    """Instantiate a policy by its registry name.

    Raises
    ------
    KeyError
        If ``name`` is not one of :data:`POLICY_NAMES`.
    """
    try:
        cls = POLICY_NAMES[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; expected one of {sorted(POLICY_NAMES)}"
        ) from None
    return cls(**kwargs)
