"""Core failure-oblivious computing mechanisms.

This package is the paper's primary contribution: the *continuation code* that
runs when a dynamic bounds check detects an invalid access.  It is independent
of the simulated memory substrate (``repro.memory``) and of any particular
server; a policy object simply answers "what should happen now?" for each
invalid read or write.

Public API
----------
* :class:`~repro.core.policy.AccessPolicy` — the policy interface.
* :class:`~repro.core.policies.StandardPolicy` — unchecked (paper's *Standard* build).
* :class:`~repro.core.policies.BoundsCheckPolicy` — terminate at first error (CRED).
* :class:`~repro.core.policies.FailureObliviousPolicy` — discard writes, manufacture reads.
* :class:`~repro.core.policies.BoundlessPolicy` — boundless memory blocks variant (§5.1).
* :class:`~repro.core.policies.RedirectPolicy` — redirect-into-unit variant (§5.1).
* :class:`~repro.core.manufacture.ManufacturedValueSequence` — the read value generator.
* :class:`~repro.core.errorlog.MemoryErrorLog` — the optional error log of §3.
"""

from repro.core.errorlog import MemoryErrorLog
from repro.core.manufacture import ManufacturedValueSequence
from repro.core.policy import AccessDecision, AccessPolicy, PolicyStatistics
from repro.core.policies import (
    BoundlessPolicy,
    BoundsCheckPolicy,
    FailureObliviousPolicy,
    RedirectPolicy,
    StandardPolicy,
    make_policy,
    POLICY_NAMES,
)

__all__ = [
    "AccessDecision",
    "AccessPolicy",
    "PolicyStatistics",
    "StandardPolicy",
    "BoundsCheckPolicy",
    "FailureObliviousPolicy",
    "BoundlessPolicy",
    "RedirectPolicy",
    "make_policy",
    "POLICY_NAMES",
    "ManufacturedValueSequence",
    "MemoryErrorLog",
]
