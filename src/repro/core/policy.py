"""The access-policy interface that defines a build variant.

A *policy* answers the question the paper's continuation code answers: what
happens at the moment the program attempts an invalid memory access?  The
simulated memory substrate (:mod:`repro.memory`) routes every access through a
:class:`~repro.memory.accessor.MemoryAccessor`, which consults its policy:

* if the policy does not perform checks (the *Standard* build), the raw access
  is performed at the computed address, corruption and all;
* if it does perform checks and the access is invalid, the policy returns an
  :class:`AccessDecision` saying whether to raise, discard, supply manufactured
  bytes, or redirect the access to a different location.

The concrete policies live in :mod:`repro.core.policies`.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.errorlog import MemoryErrorLog
from repro.errors import MemoryErrorEvent
from repro.telemetry.bus import EventBus


class DecisionAction(enum.Enum):
    """The continuation chosen by a policy for one invalid access."""

    #: Raise the attached exception, terminating the computation.
    RAISE = "raise"
    #: Invalid write: silently drop the value (failure-oblivious writes).
    DISCARD = "discard"
    #: Invalid read: return the attached manufactured bytes (failure-oblivious reads).
    SUPPLY = "supply"
    #: Perform the access at a substitute in-bounds offset (redirect variant,
    #: and boundless reads/writes backed by the policy's side store).
    REDIRECT = "redirect"
    #: Perform the raw access at the originally computed address (unchecked).
    PERFORM_RAW = "perform-raw"


@dataclass
class AccessDecision:
    """What the memory accessor should do for one invalid access.

    Exactly one of the optional payload fields is meaningful, selected by
    ``action``:  ``exception`` for RAISE, ``data`` for SUPPLY, and
    ``redirect_offset`` for REDIRECT.
    """

    action: DecisionAction
    data: Optional[bytes] = None
    exception: Optional[BaseException] = None
    redirect_offset: Optional[int] = None

    @classmethod
    def raise_(cls, exception: BaseException) -> "AccessDecision":
        """Decision that terminates the computation with ``exception``."""
        return cls(action=DecisionAction.RAISE, exception=exception)

    @classmethod
    def discard(cls) -> "AccessDecision":
        """Decision that drops an invalid write."""
        return cls(action=DecisionAction.DISCARD)

    @classmethod
    def supply(cls, data: bytes) -> "AccessDecision":
        """Decision that satisfies an invalid read with manufactured ``data``."""
        return cls(action=DecisionAction.SUPPLY, data=data)

    @classmethod
    def redirect(cls, offset: int) -> "AccessDecision":
        """Decision that performs the access at in-unit ``offset`` instead."""
        return cls(action=DecisionAction.REDIRECT, redirect_offset=offset)

    @classmethod
    def perform_raw(cls) -> "AccessDecision":
        """Decision that performs the unchecked access as-is."""
        return cls(action=DecisionAction.PERFORM_RAW)


@dataclass
class PolicyStatistics:
    """Aggregate counters maintained by every policy.

    ``checks_performed`` counts bounds checks executed (the overhead source in
    the paper's performance figures); the invalid counters track continuation
    code executions.
    """

    checks_performed: int = 0
    invalid_reads: int = 0
    invalid_writes: int = 0
    manufactured_values: int = 0
    discarded_bytes: int = 0
    redirected_accesses: int = 0
    stored_out_of_bounds_bytes: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.checks_performed = 0
        self.invalid_reads = 0
        self.invalid_writes = 0
        self.manufactured_values = 0
        self.discarded_bytes = 0
        self.redirected_accesses = 0
        self.stored_out_of_bounds_bytes = 0

    def as_dict(self) -> dict:
        """Return the counters as a plain dictionary (for reports)."""
        return {
            "checks_performed": self.checks_performed,
            "invalid_reads": self.invalid_reads,
            "invalid_writes": self.invalid_writes,
            "manufactured_values": self.manufactured_values,
            "discarded_bytes": self.discarded_bytes,
            "redirected_accesses": self.redirected_accesses,
            "stored_out_of_bounds_bytes": self.stored_out_of_bounds_bytes,
        }


class AccessPolicy(ABC):
    """Interface implemented by every build variant.

    Subclasses override :meth:`on_invalid_read` and :meth:`on_invalid_write`;
    the accessor only calls them when :attr:`performs_checks` is True and a
    check failed.
    """

    #: Short machine-readable name used by the harness and reports.
    name: str = "abstract"
    #: Whether the accessor should run bounds checks at all.  The Standard
    #: build sets this to False, which is also why it is the fastest build.
    performs_checks: bool = True
    #: Whether the policy implements the batched run hooks
    #: (:meth:`on_invalid_read_run` / :meth:`on_invalid_write_run`).  When
    #: False the accessor falls back to one policy decision per byte — the
    #: reference semantics every run hook must reproduce exactly.  All five
    #: shipped checking policies support runs; third-party policies keep
    #: working unmodified through the per-byte path.
    supports_runs: bool = False
    #: Whether :meth:`scan_invalid_read_run` can batch terminator scans.
    #: False (redirect: its bytes live in memory, not in the policy) lets the
    #: accessor skip the classify-and-ask round trip entirely and hand the
    #: scan straight back to the per-byte path.
    supports_scan_runs: bool = False

    def __init__(self, error_log: Optional[MemoryErrorLog] = None) -> None:
        self.error_log = error_log if error_log is not None else MemoryErrorLog()
        self.stats = PolicyStatistics()
        # Scope exported telemetry records with the build name; setdefault so
        # a log (and bus) shared between policies keeps its first owner.
        self.bus.scope.setdefault("policy", self.name)

    # -- hooks ---------------------------------------------------------------

    @abstractmethod
    def on_invalid_read(self, event: MemoryErrorEvent, length: int) -> AccessDecision:
        """Decide what to do about an invalid read of ``length`` bytes."""

    @abstractmethod
    def on_invalid_write(self, event: MemoryErrorEvent, data: bytes) -> AccessDecision:
        """Decide what to do about an invalid write of ``data``."""

    # -- batched run hooks -----------------------------------------------------
    #
    # A *run* is a contiguous sequence of per-byte invalid accesses — the
    # out-of-bounds suffix of a span operation.  The run hooks receive the
    # first per-byte event (length 1) plus the run size and must behave
    # exactly like ``count`` calls of the scalar hook on events whose offsets
    # step by one: same statistics, same error-log contents (recorded as one
    # run via record_event_run), same manufactured-sequence consumption, and
    # one decision covering the whole run.  They are only called when
    # ``supports_runs`` is True.

    def on_invalid_read_run(self, event: MemoryErrorEvent, count: int) -> AccessDecision:
        """Decide a contiguous run of ``count`` per-byte invalid reads at once."""
        raise NotImplementedError(
            f"{type(self).__name__} sets supports_runs but lacks on_invalid_read_run"
        )

    def on_invalid_write_run(self, event: MemoryErrorEvent, data: bytes) -> AccessDecision:
        """Decide a contiguous run of ``len(data)`` per-byte invalid writes at once."""
        raise NotImplementedError(
            f"{type(self).__name__} sets supports_runs but lacks on_invalid_write_run"
        )

    def scan_invalid_read_run(
        self, event: MemoryErrorEvent, count: int, until: Tuple[int, ...]
    ) -> Optional[AccessDecision]:
        """Batched terminator scan: per-byte reads that stop at a sentinel.

        The C-string loops read invalid bytes one at a time *until a
        terminator appears* — so the run length is data-dependent and cannot
        be fixed up front without over-consuming the manufactured-value
        sequence.  Policies whose invalid-read bytes are internally generated
        (failure-oblivious, boundless) override this to produce up to
        ``count`` bytes, stopping after the first byte in ``until``, and
        record exactly as many per-byte events as bytes produced; the hit is
        the last returned byte iff it is in ``until``.

        Policies whose invalid-read bytes live in simulated memory (redirect)
        cannot produce the bytes themselves; they may instead return a
        REDIRECT decision — a *preview*.  The accessor then performs the
        wrapped scan over the unit's own bytes, stopping exactly where the
        per-byte loop would, and reports how many per-byte reads that
        consumed via :meth:`commit_scan_run`, which does the deferred
        recording.

        Returning None (the default) tells the accessor to fall back to one
        policy decision per byte; policies that can never scan-batch leave
        ``supports_scan_runs`` False instead, which skips even the
        classification round trip.
        """
        return None

    def commit_scan_run(self, event: MemoryErrorEvent, consumed: int) -> None:
        """Record a previewed scan after the accessor performed it.

        Called only after :meth:`scan_invalid_read_run` returned a REDIRECT
        preview; ``consumed`` is how many per-byte invalid reads the scan
        performed (including the terminator hit, if any).  Implementations
        must record exactly what ``consumed`` scalar ``on_invalid_read`` calls
        would have recorded.
        """
        raise NotImplementedError(
            f"{type(self).__name__} previewed a scan run but lacks commit_scan_run"
        )

    # -- shared bookkeeping ----------------------------------------------------

    @property
    def bus(self) -> EventBus:
        """The telemetry bus this policy publishes on (owned by its error log)."""
        return self.error_log.bus

    def emit(self, event: object) -> None:
        """Publish one telemetry event (continuation decisions, mostly)."""
        self.error_log.bus.emit(event)

    def note_check(self) -> None:
        """Record that one bounds check was executed."""
        self.stats.checks_performed += 1

    def record_event(self, event: MemoryErrorEvent) -> None:
        """Log an invalid access attempt and bump the per-direction counter."""
        self.error_log.record(event)
        if event.access.value == "read":
            self.stats.invalid_reads += 1
        else:
            self.stats.invalid_writes += 1

    def record_event_run(self, event: MemoryErrorEvent, count: int) -> None:
        """Log a contiguous run of ``count`` per-byte invalid accesses.

        Equivalent to ``count`` calls of :meth:`record_event` on events whose
        offsets step by one byte — every error-log query and statistic answers
        identically — but published as a single run record.
        """
        if count <= 0:
            return
        self.error_log.record_run(event, count, stride=1)
        if event.access.value == "read":
            self.stats.invalid_reads += count
        else:
            self.stats.invalid_writes += count

    def reset_statistics(self) -> None:
        """Zero the statistics counters (the error log is left untouched)."""
        self.stats.reset()

    # -- checkpoint / restore --------------------------------------------------
    #
    # A policy carries per-process-image side state: the statistics counters,
    # the error log, and (in subclasses) manufactured-value generators and
    # out-of-bounds stores.  The process-image checkpoint captures it all so
    # a restored image answers every query exactly as a from-scratch reboot
    # would.  Subclasses extend the returned dict via super().

    def checkpoint_state(self) -> dict:
        """Snapshot the policy's per-image side state (pure data)."""
        return {
            "stats": dict(self.stats.as_dict()),
            "log": self.error_log.checkpoint(),
        }

    def restore_state(self, state: dict) -> None:
        """Reset the policy's side state to a :meth:`checkpoint_state` snapshot."""
        for field_name, value in state["stats"].items():
            setattr(self.stats, field_name, value)
        self.error_log.restore(state["log"])

    def describe(self) -> str:
        """Return a short human readable description of the policy."""
        return f"{self.name} (checks={'on' if self.performs_checks else 'off'})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"
