"""The access-policy interface that defines a build variant.

A *policy* answers the question the paper's continuation code answers: what
happens at the moment the program attempts an invalid memory access?  The
simulated memory substrate (:mod:`repro.memory`) routes every access through a
:class:`~repro.memory.accessor.MemoryAccessor`, which consults its policy:

* if the policy does not perform checks (the *Standard* build), the raw access
  is performed at the computed address, corruption and all;
* if it does perform checks and the access is invalid, the policy returns an
  :class:`AccessDecision` saying whether to raise, discard, supply manufactured
  bytes, or redirect the access to a different location.

The concrete policies live in :mod:`repro.core.policies`.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from repro.core.errorlog import MemoryErrorLog
from repro.errors import MemoryErrorEvent
from repro.telemetry.bus import EventBus


class DecisionAction(enum.Enum):
    """The continuation chosen by a policy for one invalid access."""

    #: Raise the attached exception, terminating the computation.
    RAISE = "raise"
    #: Invalid write: silently drop the value (failure-oblivious writes).
    DISCARD = "discard"
    #: Invalid read: return the attached manufactured bytes (failure-oblivious reads).
    SUPPLY = "supply"
    #: Perform the access at a substitute in-bounds offset (redirect variant,
    #: and boundless reads/writes backed by the policy's side store).
    REDIRECT = "redirect"
    #: Perform the raw access at the originally computed address (unchecked).
    PERFORM_RAW = "perform-raw"


@dataclass
class AccessDecision:
    """What the memory accessor should do for one invalid access.

    Exactly one of the optional payload fields is meaningful, selected by
    ``action``:  ``exception`` for RAISE, ``data`` for SUPPLY, and
    ``redirect_offset`` for REDIRECT.
    """

    action: DecisionAction
    data: Optional[bytes] = None
    exception: Optional[BaseException] = None
    redirect_offset: Optional[int] = None

    @classmethod
    def raise_(cls, exception: BaseException) -> "AccessDecision":
        """Decision that terminates the computation with ``exception``."""
        return cls(action=DecisionAction.RAISE, exception=exception)

    @classmethod
    def discard(cls) -> "AccessDecision":
        """Decision that drops an invalid write."""
        return cls(action=DecisionAction.DISCARD)

    @classmethod
    def supply(cls, data: bytes) -> "AccessDecision":
        """Decision that satisfies an invalid read with manufactured ``data``."""
        return cls(action=DecisionAction.SUPPLY, data=data)

    @classmethod
    def redirect(cls, offset: int) -> "AccessDecision":
        """Decision that performs the access at in-unit ``offset`` instead."""
        return cls(action=DecisionAction.REDIRECT, redirect_offset=offset)

    @classmethod
    def perform_raw(cls) -> "AccessDecision":
        """Decision that performs the unchecked access as-is."""
        return cls(action=DecisionAction.PERFORM_RAW)


@dataclass
class PolicyStatistics:
    """Aggregate counters maintained by every policy.

    ``checks_performed`` counts bounds checks executed (the overhead source in
    the paper's performance figures); the invalid counters track continuation
    code executions.
    """

    checks_performed: int = 0
    invalid_reads: int = 0
    invalid_writes: int = 0
    manufactured_values: int = 0
    discarded_bytes: int = 0
    redirected_accesses: int = 0
    stored_out_of_bounds_bytes: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.checks_performed = 0
        self.invalid_reads = 0
        self.invalid_writes = 0
        self.manufactured_values = 0
        self.discarded_bytes = 0
        self.redirected_accesses = 0
        self.stored_out_of_bounds_bytes = 0

    def as_dict(self) -> dict:
        """Return the counters as a plain dictionary (for reports)."""
        return {
            "checks_performed": self.checks_performed,
            "invalid_reads": self.invalid_reads,
            "invalid_writes": self.invalid_writes,
            "manufactured_values": self.manufactured_values,
            "discarded_bytes": self.discarded_bytes,
            "redirected_accesses": self.redirected_accesses,
            "stored_out_of_bounds_bytes": self.stored_out_of_bounds_bytes,
        }


class AccessPolicy(ABC):
    """Interface implemented by every build variant.

    Subclasses override :meth:`on_invalid_read` and :meth:`on_invalid_write`;
    the accessor only calls them when :attr:`performs_checks` is True and a
    check failed.
    """

    #: Short machine-readable name used by the harness and reports.
    name: str = "abstract"
    #: Whether the accessor should run bounds checks at all.  The Standard
    #: build sets this to False, which is also why it is the fastest build.
    performs_checks: bool = True

    def __init__(self, error_log: Optional[MemoryErrorLog] = None) -> None:
        self.error_log = error_log if error_log is not None else MemoryErrorLog()
        self.stats = PolicyStatistics()
        # Scope exported telemetry records with the build name; setdefault so
        # a log (and bus) shared between policies keeps its first owner.
        self.bus.scope.setdefault("policy", self.name)

    # -- hooks ---------------------------------------------------------------

    @abstractmethod
    def on_invalid_read(self, event: MemoryErrorEvent, length: int) -> AccessDecision:
        """Decide what to do about an invalid read of ``length`` bytes."""

    @abstractmethod
    def on_invalid_write(self, event: MemoryErrorEvent, data: bytes) -> AccessDecision:
        """Decide what to do about an invalid write of ``data``."""

    # -- shared bookkeeping ----------------------------------------------------

    @property
    def bus(self) -> EventBus:
        """The telemetry bus this policy publishes on (owned by its error log)."""
        return self.error_log.bus

    def emit(self, event: object) -> None:
        """Publish one telemetry event (continuation decisions, mostly)."""
        self.error_log.bus.emit(event)

    def note_check(self) -> None:
        """Record that one bounds check was executed."""
        self.stats.checks_performed += 1

    def record_event(self, event: MemoryErrorEvent) -> None:
        """Log an invalid access attempt and bump the per-direction counter."""
        self.error_log.record(event)
        if event.access.value == "read":
            self.stats.invalid_reads += 1
        else:
            self.stats.invalid_writes += 1

    def reset_statistics(self) -> None:
        """Zero the statistics counters (the error log is left untouched)."""
        self.stats.reset()

    def describe(self) -> str:
        """Return a short human readable description of the policy."""
        return f"{self.name} (checks={'on' if self.performs_checks else 'off'})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"
