"""Manufactured value sequences for invalid reads.

Section 3 of the paper:

    "We therefore generate a sequence that iterates through all small
    integers, increasing the chance that, if the values are used to determine
    loop conditions, the computation will hit upon a value that will exit the
    loop (and avoid nontermination).  Because zero and one are usually the
    most commonly loaded values in computer programs, the sequence is designed
    to return these values more frequently than other, less common, values."

The default sequence below interleaves 0 and 1 with a counter that walks
through the remaining small integers:  0, 1, 2, 0, 1, 3, 0, 1, 4, ...  Once the
counter exceeds ``max_small`` it wraps back to 2, so every byte value in
``[0, max_small]`` eventually appears (which is what lets loops searching for a
particular character — the Midnight Commander ``/`` search — terminate).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence


class ManufacturedValueSequence:
    """Deterministic generator of values for invalid reads.

    Parameters
    ----------
    max_small:
        Largest value produced by the walking counter.  The default of 255
        covers every possible byte, guaranteeing that a loop searching memory
        for any particular character eventually observes it.
    favor_zero_one:
        If True (the paper's design), 0 and 1 are interleaved before every
        counter value so they appear far more frequently than other values.
    """

    def __init__(self, max_small: int = 255, favor_zero_one: bool = True) -> None:
        if max_small < 2:
            raise ValueError("max_small must be at least 2")
        self.max_small = max_small
        self.favor_zero_one = favor_zero_one
        self._counter = 2
        self._phase = 0
        self._produced = 0

    def reset(self) -> None:
        """Restart the sequence from the beginning."""
        self._counter = 2
        self._phase = 0
        self._produced = 0

    def checkpoint(self) -> tuple:
        """Snapshot the generator position (for process-image checkpoints)."""
        return (self._counter, self._phase, self._produced)

    def restore(self, cp: tuple) -> None:
        """Rewind the generator to a snapshot taken by :meth:`checkpoint`."""
        self._counter, self._phase, self._produced = cp

    @property
    def produced(self) -> int:
        """Total number of values handed out so far."""
        return self._produced

    def next_value(self) -> int:
        """Return the next manufactured value in ``[0, max_small]``."""
        self._produced += 1
        if not self.favor_zero_one:
            value = self._counter
            self._advance_counter()
            return value
        if self._phase == 0:
            self._phase = 1
            return 0
        if self._phase == 1:
            self._phase = 2
            return 1
        self._phase = 0
        value = self._counter
        self._advance_counter()
        return value

    def _advance_counter(self) -> None:
        self._counter += 1
        if self._counter > self.max_small:
            self._counter = 2

    def next_byte(self) -> int:
        """Return the next manufactured value clamped to a single byte."""
        return self.next_value() & 0xFF

    def next_bytes(self, length: int) -> bytes:
        """Return ``length`` manufactured bytes."""
        return bytes(self.next_byte() for _ in range(length))

    def next_int(self, size: int = 4, signed: bool = True) -> int:
        """Return a manufactured integer of ``size`` bytes.

        Each invalid scalar read consumes one sequence element (not one per
        byte) so that consecutive reads see the 0, 1, 2, 0, 1, 3 ... pattern
        directly, which is the property the paper relies on for loop exit.
        """
        value = self.next_value()
        limit = 1 << (8 * size)
        value %= limit
        if signed and value >= limit // 2:
            value -= limit
        return value

    def peek(self, count: int) -> List[int]:
        """Return the next ``count`` values without consuming them."""
        saved = (self._counter, self._phase, self._produced)
        values = [self.next_value() for _ in range(count)]
        self._counter, self._phase, self._produced = saved
        return values

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.next_value()


class ZeroValueSequence(ManufacturedValueSequence):
    """Ablation variant: always manufacture zero.

    Used by the ablation benchmark to show why the paper's cycling sequence is
    needed — a constant sequence can leave loops that search for a particular
    character spinning forever (the Midnight Commander hang described in §3).
    """

    def __init__(self) -> None:
        super().__init__(max_small=2, favor_zero_one=False)

    def next_value(self) -> int:  # noqa: D102 - behaviour described in class docstring
        self._produced += 1
        return 0


class FixedValueSequence(ManufacturedValueSequence):
    """Ablation variant: cycle through a caller-supplied list of values."""

    def __init__(self, values: Sequence[int]) -> None:
        if not values:
            raise ValueError("values must be non-empty")
        super().__init__(max_small=255, favor_zero_one=False)
        self._values = list(values)
        self._index = 0

    def next_value(self) -> int:  # noqa: D102 - behaviour described in class docstring
        self._produced += 1
        value = self._values[self._index % len(self._values)]
        self._index += 1
        return value

    def reset(self) -> None:  # noqa: D102
        super().reset()
        self._index = 0

    def checkpoint(self) -> tuple:  # noqa: D102 - adds the cycling index
        return super().checkpoint() + (self._index,)

    def restore(self, cp: tuple) -> None:  # noqa: D102
        super().restore(cp[:3])
        self._index = cp[3]
