#!/usr/bin/env python3
"""The paper's vulnerable C functions, compiled and served live.

The ``minic-pine`` and ``minic-sendmail`` profiles host *compiled mini-C*:
the overflow sites from the paper — Pine's ``est_size`` From-quoting
overflow (§4.2) and the Sendmail ``crackaddr``-style comment-balancing walk
— are parsed by the front end in ``src/repro/minic/``, idiom-lowered onto
the span fast path, and interpreted inside the simulated address space of a
live server.  Because the profiles register through the standard
:class:`~repro.servers.profile.ServerProfile` path, every experiment shape
the harness offers (figure tables, the security matrix, fleet soaks) works
on the compiled programs with zero harness edits.

Run with:  python examples/minic_servers.py
"""

from repro.fleet.report import format_fleet_table
from repro.fleet.scheduler import InstanceSpec, run_fleet
from repro.harness.engine import ENGINE, ScenarioSpec
from repro.harness.report import format_figure_table, format_security_matrix


def main() -> None:
    print("Compiled mini-C request times (the paper's C code, interpreted):\n")
    for server in ("minic-pine", "minic-sendmail"):
        rows = ENGINE.run(
            ScenarioSpec(server=server, workload="performance", repetitions=10)
        )
        print(format_figure_table(rows))
        print()

    print("The documented overflows, delivered to each build:\n")
    cells = ENGINE.run_security_matrix(
        servers=["minic-pine", "minic-sendmail"],
        policies=("standard", "bounds-check", "failure-oblivious"),
    )
    print(format_security_matrix(cells, title="Compiled mini-C under attack"))

    print(
        "\nminic-pine survives the quoting overflow failure-obliviously (the"
        " discarded writes never reach the heap); minic-sendmail's own"
        " post-parse length check turns the survived overflow into a 552"
        " rejection — the paper's §4.1 anticipated-error story, now emitted"
        " by the compiled C itself.\n"
    )

    print("A small mixed fleet of compiled servers under attack traffic:\n")
    result = run_fleet(
        [
            InstanceSpec("minic-pine", "failure-oblivious", count=2, attack_every=6),
            InstanceSpec("minic-sendmail", "failure-oblivious", count=2, attack_every=6),
            InstanceSpec("minic-sendmail", "standard", count=1, attack_every=6),
        ],
        total_requests=150,
        seed=9,
        workers=0,
    )
    print(format_fleet_table(result))


if __name__ == "__main__":
    main()
