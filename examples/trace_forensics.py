#!/usr/bin/env python3
"""Attack forensics from the telemetry stream alone (§3 + §4.3.2 narrative).

The paper's security story is a *narrative*: the attack request arrives, the
server attempts out-of-bounds writes, the failure-oblivious continuation
discards them, and the server's own error handling rejects the request — an
"anticipated error" — after which legitimate users are served as if nothing
happened.  This script reconstructs that narrative for Apache purely from an
exported telemetry trace: it runs the documented attack scenario under a
:class:`~repro.telemetry.session.TelemetrySession`, merges the JSONL export,
and then *reads only the file* — no live server objects — to tell the story
request by request.

Run with:  python examples/trace_forensics.py
"""

import os
import tempfile

from repro.harness.engine import ENGINE, ScenarioSpec
from repro.telemetry import TelemetrySession
from repro.telemetry.summary import iter_records, request_traces, summarize_records


def export_attack_trace(out_path: str) -> None:
    """Run the Apache attack scenario and export its event stream as JSONL."""
    spec = ScenarioSpec(server="apache", policy="failure-oblivious",
                        workload="attack", scale=0.25)
    with TelemetrySession() as session:
        ENGINE.run(spec)
        written = session.merge(out_path)
    session.cleanup()
    print(f"exported {written} events to {out_path}\n")


def narrate(out_path: str) -> None:
    """Reconstruct the attack -> anticipated-error narrative from events alone."""
    records = list(iter_records(out_path))
    summary = summarize_records(iter(records))
    print(f"trace contains {summary.total_events} events "
          f"({summary.invalid_total} invalid accesses, "
          f"{summary.discarded_bytes} bytes discarded, "
          f"{summary.manufactured_bytes} bytes manufactured)\n")

    for trace in request_traces(records):
        start, end = trace["start"], trace["end"]
        if end is None:
            continue
        label = "ATTACK " if end["is_attack"] else "benign "
        kind = end["kind"]
        print(f"{label} request #{trace['request_id']} ({kind}):")
        invalid = [r for r in trace["events"] if r["event"] == "invalid-access"]
        discards = [r for r in trace["events"] if r["event"] == "discard"]
        manufactures = [r for r in trace["events"] if r["event"] == "manufacture"]
        if invalid:
            sites = {r["site"] for r in invalid}
            units = {r["unit_name"] for r in invalid}
            print(f"    attempted {len(invalid)} invalid access(es) "
                  f"at {', '.join(sorted(sites))}")
            print(f"    overflowed unit(s): {', '.join(sorted(units))}")
        if discards:
            dropped = sum(r["length"] for r in discards)
            print(f"    continuation: discarded {dropped} out-of-bounds byte(s)")
        if manufactures:
            supplied = sum(r["length"] for r in manufactures)
            print(f"    continuation: manufactured {supplied} byte(s) for invalid reads")
        print(f"    outcome: {end['outcome']}")
        if end["is_attack"] and end["outcome"] == "rejected-by-error-handling":
            print("    => the attack became an anticipated error case "
                  "(the paper's central observation)")
        print()

    served = summary.requests_by_outcome.get("served", 0)
    print(f"legitimate service after the attack: {served} request(s) served, "
          f"0 crashes — reconstructed without touching a live server.")


def main() -> None:
    out_path = os.path.join(tempfile.gettempdir(), "apache-attack-trace.jsonl")
    export_attack_trace(out_path)
    narrate(out_path)
    print(f"\nThe trace remains at {out_path}; try:")
    print(f"  python -m repro trace summary {out_path} --site rewrite")


if __name__ == "__main__":
    main()
