#!/usr/bin/env python3
"""Self-healing walkthrough: rollback recovery, fault injection, forensics.

Three acts:

1. **Supervised serving.**  Apache under the bounds-check build is wrapped in
   a :class:`~repro.recovery.supervisor.RecoverySupervisor`.  Benign traffic
   flows; a planted attack kills the server twice, burns its retry budget,
   and is quarantined — and because every recovery is a rollback to the last
   incremental snapshot, the requests served before the attack are never
   re-lost the way a boot-image restart would lose them.

2. **Fault-injected soak.**  A small fleet (Apache and the compiled mini-C
   sendmail, under failure-oblivious and bounds-check) runs with a seeded
   fault injector firing aborts, failed allocations, and heap-header
   corruption.  Every legitimate request is still served: transient faults
   are retried off the last snapshot.

3. **Memory forensics.**  Pine's message index is snapshotted before and
   after the paper's ``From:``-field overflow, and the block-level diff
   shows exactly which heap blocks the attack dirtied.

Run with:  python examples/rollback_forensics.py
"""

from __future__ import annotations

import os
import tempfile

from repro.fleet.scheduler import InstanceSpec, run_fleet
from repro.harness.engine import ENGINE
from repro.recovery import (
    FaultInjector,
    RecoveryPolicy,
    RecoverySupervisor,
    diff_snapshots,
    format_diff,
    load_snapshot,
    save_snapshot,
)


def act_one_supervised_serving() -> None:
    print("=== 1. Rollback recovery under the bounds-check build ===\n")
    server = ENGINE.build_server(
        "apache", "bounds-check", plant_attack=True, scale=0.25
    )
    server.start()
    profile = ENGINE.profile("apache")
    supervisor = RecoverySupervisor(
        server, RecoveryPolicy(snapshot_every=4, retry_budget=1)
    )
    for i in range(8):
        supervisor.submit(profile.make_request("small", index=i))
    print(f"served 8 benign requests; snapshots taken: "
          f"{supervisor.snapshots_taken}")
    result = supervisor.submit(profile.make_attack_request())
    print(f"attack outcome       : {result.outcome.value}")
    print(f"rollbacks performed  : {supervisor.rollbacks}")
    print(f"requests quarantined : {supervisor.quarantined}")
    follow_up = supervisor.submit(profile.make_request("small", index=99))
    print(f"next benign request  : {follow_up.outcome.value} "
          f"(the rollback kept the server serving)\n")
    server.stop()


def act_two_fault_injected_fleet() -> None:
    print("=== 2. Fault-injected self-healing fleet ===\n")
    specs = [
        InstanceSpec("apache", "failure-oblivious", attack_every=25),
        InstanceSpec("apache", "bounds-check", attack_every=25),
        InstanceSpec("minic-sendmail", "failure-oblivious", attack_every=25),
        InstanceSpec("minic-sendmail", "bounds-check", attack_every=25),
    ]
    result = run_fleet(
        specs,
        total_requests=1200,
        seed=13,
        workers=0,
        recovery=RecoveryPolicy(snapshot_every=32, retry_budget=1),
        fault_every=53,
    )
    print(f"requests             : {result.total_requests}")
    print(f"faults injected      : {result.faults_injected}")
    print(f"snapshots taken      : {result.snapshots}")
    print(f"rollbacks performed  : {result.rollbacks}")
    print(f"attacks quarantined  : {result.quarantined}")
    print(f"legitimate served    : {result.legitimate_served}"
          f"/{result.legitimate_requests}")
    print(f"fleet availability   : {result.availability:.3f} "
          f"(quarantined poison excluded)\n")


def act_three_forensics() -> None:
    print("=== 3. Forensics: which blocks did the attack dirty? ===\n")
    server = ENGINE.build_server(
        "pine", "failure-oblivious", plant_attack=True, scale=0.25
    )
    server.start()
    profile = ENGINE.profile("pine")
    for request in profile.make_follow_ups():
        server.process(request)
    with tempfile.TemporaryDirectory() as scratch:
        before = os.path.join(scratch, "before.snap")
        after = os.path.join(scratch, "after.snap")
        save_snapshot(before, server.ctx.space.checkpoint(),
                      label="pine pre-attack")
        server.process(profile.make_attack_request())
        save_snapshot(after, server.ctx.space.checkpoint(),
                      label="pine post-attack")
        cp_a, label_a = load_snapshot(before)
        cp_b, label_b = load_snapshot(after)
        diff = diff_snapshots(cp_a, cp_b, a_label=label_a, b_label=label_b)
        print(format_diff(diff))
    server.stop()
    print("\n(The same workflow is scriptable: `python -m repro forensics "
          "capture pine --before pre.snap --after post.snap` then "
          "`python -m repro forensics diff pre.snap post.snap`.)")


def main() -> None:
    act_one_supervised_serving()
    act_two_fault_injected_fleet()
    act_three_forensics()


if __name__ == "__main__":
    main()
