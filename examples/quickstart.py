#!/usr/bin/env python3
"""Quickstart: what failure-oblivious computing does to a buffer overflow.

The example allocates an 8-byte buffer and writes 32 bytes into it — the
canonical buffer overrun — under each of the three builds the paper compares:

* Standard (unchecked): the overflow corrupts neighbouring memory and the
  heap allocator's metadata; the "process" dies shortly afterwards.
* Bounds Check (CRED): the first out-of-bounds store terminates the program.
* Failure Oblivious: the out-of-bounds bytes are discarded, out-of-bounds
  reads return manufactured values, and execution simply continues.

Run with:  python examples/quickstart.py
"""

from repro import (
    BoundsCheckPolicy,
    BoundsCheckViolation,
    FailureObliviousPolicy,
    HeapCorruption,
    MemoryContext,
    SegmentationFault,
    StandardPolicy,
)


def overflow_demo(policy) -> str:
    """Write 32 bytes into an 8-byte buffer and report what happened."""
    ctx = MemoryContext(policy)
    buf = ctx.malloc(8, name="small_buffer")
    neighbour = ctx.malloc(8, name="neighbour")
    ctx.mem.write(neighbour, b"SENTINEL")

    try:
        ctx.mem.write(buf, b"A" * 32)          # the overflow
        ctx.heap.verify_heap()                  # the allocator's next metadata walk
    except (SegmentationFault, HeapCorruption) as fault:
        return f"process died: {type(fault).__name__}: {fault}"
    except BoundsCheckViolation as fault:
        return f"terminated by the bounds checker: {fault}"

    neighbour_bytes = ctx.mem.read(neighbour, 8)
    manufactured = ctx.mem.read(buf + 8, 6)
    return (
        "continued executing; "
        f"neighbour still reads {neighbour_bytes!r}, "
        f"reads past the buffer return manufactured values {list(manufactured)}, "
        f"{len(ctx.error_log)} memory error(s) were logged for the administrator"
    )


def main() -> None:
    builds = [
        ("Standard          ", StandardPolicy()),
        ("Bounds Check      ", BoundsCheckPolicy()),
        ("Failure Oblivious ", FailureObliviousPolicy()),
    ]
    print("Writing 32 bytes into an 8-byte buffer under each build:\n")
    for name, policy in builds:
        print(f"  {name}: {overflow_demo(policy)}")
    print(
        "\nThe failure-oblivious build is the only one that neither corrupts"
        " memory nor stops serving — the paper's central claim."
    )


if __name__ == "__main__":
    main()
