#!/usr/bin/env python3
"""Attack demo: all five servers, three builds, the documented exploits.

For each of the servers evaluated in the paper (Pine, Apache, Sendmail,
Midnight Commander, Mutt) this script plants the documented error trigger,
boots the server under the Standard, Bounds Check, and Failure Oblivious
builds, delivers the attack input, and then checks whether legitimate
follow-up requests are still served — reproducing the §4.2.2-§4.6.2 results.

Run with:  python examples/attack_demo.py
"""

from repro.analysis.security import assess_security
from repro.harness.engine import ENGINE
from repro.harness.report import format_security_matrix


def main() -> None:
    print("Running the documented attack against every server and build...\n")
    cells = ENGINE.run_security_matrix(scale=0.25)
    print(format_security_matrix(cells))
    print()

    assessments = assess_security(cells=cells)
    print("Verdicts:")
    for assessment in assessments:
        print(f"  {assessment.server:<20} {assessment.policy:<18} {assessment.verdict()}")

    failure_oblivious = [a for a in assessments if a.policy == "failure-oblivious"]
    survived = sum(1 for a in failure_oblivious if a.invulnerable and a.continued_service)
    print(
        f"\nFailure-oblivious builds that survived their attack and kept serving: "
        f"{survived}/{len(failure_oblivious)}"
    )


if __name__ == "__main__":
    main()
