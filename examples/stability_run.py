#!/usr/bin/env python3
"""Stability run: daily-use workloads with periodic attacks (§4.2.4-§4.6.4).

For every server, the script drives a long, seeded stream of ordinary requests
with the documented attack injected every N requests, under the
failure-oblivious build, and reports whether service stayed flawless and what
the administrator's memory-error log recorded — including the two benign
errors the paper highlights (Sendmail's wake-up error and Midnight Commander's
blank-configuration-line error).

Run with:  python examples/stability_run.py
"""

from repro.harness.report import format_simple_table
from repro.harness.stability import run_stability_experiment
from repro.servers import SERVER_CLASSES
from repro.workloads.attacks import midnight_commander_blank_line_config


def main() -> None:
    rows = []
    for server_name in sorted(SERVER_CLASSES):
        result = run_stability_experiment(
            server_name,
            "failure-oblivious",
            total_requests=150,
            attack_every=20,
            scale=0.25,
        )
        rows.append(
            (
                server_name,
                result.legitimate_served,
                result.attacks_survived,
                result.attack_requests,
                result.memory_errors_logged,
                "yes" if result.flawless else "NO",
            )
        )
    print(
        format_simple_table(
            ["server", "legit served", "attacks survived", "attacks sent", "errors logged", "flawless"],
            rows,
            title="Failure-oblivious builds under daily use with periodic attacks",
        )
    )

    print("\nAdministrator error-log highlights:")
    sendmail = run_stability_experiment(
        "sendmail", "failure-oblivious", total_requests=60, attack_every=15, scale=0.25
    )
    wakeups = sendmail.error_sites.get("sendmail.daemon_wakeup", 0)
    print(f"  sendmail: {wakeups} wake-up errors logged — the benign error that makes the"
          " Bounds Check build unusable (§4.4.4)")

    mc = run_stability_experiment(
        "midnight-commander", "failure-oblivious", total_requests=60, attack_every=15,
        scale=0.25,
    )
    print(f"  midnight-commander: symlink errors logged at"
          f" {sum(1 for site in mc.error_sites if 'symlink' in site)} site(s);"
          " with blank configuration lines the parser also logs one error per blank line"
          f" (config used here: {list(midnight_commander_blank_line_config())[0]})")


if __name__ == "__main__":
    main()
