#!/usr/bin/env python3
"""Figure 1 walkthrough: the same C source, three compilers, three behaviours.

This example takes the paper's Figure 1 — Mutt's ``utf8_to_utf7`` conversion
routine, whose output buffer is allocated at ``u8len * 2 + 1`` bytes even
though the conversion can expand the name by more than a factor of two — and
runs it through the mini-C front end under each build variant, first on a
benign IMAP folder name and then on the malicious name from the Mutt advisory.

It then shows the end-to-end server view (§4.6.2): the failure-oblivious Mutt
sends the truncated name to the IMAP server, receives "no such folder", and
keeps working.

Run with:  python examples/mutt_figure1.py
"""

from repro import BoundsCheckPolicy, FailureObliviousPolicy, StandardPolicy
from repro.errors import BoundsCheckViolation, HeapCorruption, SegmentationFault
from repro.minic import compile_program
from repro.minic.figure1 import FIGURE1_SOURCE
from repro.minic.interpreter import TypedPointer
from repro.servers.base import Request
from repro.servers.mutt import MuttServer
from repro.workloads.attacks import mutt_attack_config, mutt_attack_folder_name

BUILDS = [
    ("Standard", StandardPolicy),
    ("Bounds Check", BoundsCheckPolicy),
    ("Failure Oblivious", FailureObliviousPolicy),
]


def run_conversion(program, policy_cls, name: bytes) -> str:
    """Run utf8_to_utf7 from the mini-C source under one build."""
    instance = program.instantiate(policy_cls())
    try:
        result = instance.call("utf8_to_utf7", name, len(name))
        instance.ctx.heap.verify_heap()
    except (SegmentationFault, HeapCorruption) as fault:
        return f"heap corrupted, process dies ({type(fault).__name__})"
    except BoundsCheckViolation:
        return "terminated at the first out-of-bounds store"
    if not isinstance(result, TypedPointer):
        return "conversion bailed (invalid UTF-8)"
    converted = instance.read_string(result)
    errors = len(instance.ctx.error_log)
    return f"returned {len(converted)}-byte name, {errors} memory error(s) logged"


def main() -> None:
    program = compile_program(FIGURE1_SOURCE)
    benign = "travail/é2004".encode("utf-8")
    attack = mutt_attack_folder_name(120)

    print("Figure 1 (utf8_to_utf7) compiled from mini-C source\n")
    print(f"Benign folder name {benign!r}:")
    for label, policy_cls in BUILDS:
        print(f"  {label:<18}: {run_conversion(program, policy_cls, benign)}")

    print(f"\nMalicious folder name ({len(attack)} control characters, expansion ratio > 2):")
    for label, policy_cls in BUILDS:
        print(f"  {label:<18}: {run_conversion(program, policy_cls, attack)}")

    print("\nEnd-to-end Mutt behaviour when configured to open the malicious folder:")
    for label, policy_cls in BUILDS:
        server = MuttServer(policy_cls, config=mutt_attack_config())
        boot = server.start()
        line = f"  {label:<18}: boot -> {boot.outcome.value}"
        if server.alive:
            opened = server.process(Request(kind="open_folder", payload={"folder": b"INBOX"}))
            read = server.process(Request(kind="read", payload={"index": 0}))
            line += f"; open INBOX -> {opened.outcome.value}; read -> {read.outcome.value}"
        print(line)

    print(
        "\nOnly the failure-oblivious build turns the attack into the anticipated"
        " 'folder does not exist' error and lets the user keep reading mail (§4.6.2)."
    )


if __name__ == "__main__":
    main()
