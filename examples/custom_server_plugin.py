#!/usr/bin/env python3
"""Plugging a brand-new server into the experiment engine.

The paper evaluates five servers, but the harness is not limited to them: a
server becomes an experiment subject by registering a
:class:`~repro.servers.profile.ServerProfile` describing its benign workload,
its attack, and its follow-up requests.  This script defines a small "guestbook"
server with the classic undersized-buffer bug, registers its profile, and runs
it through the same performance and attack shapes as the paper's servers —
without touching a single harness module.

Run with:  python examples/custom_server_plugin.py
"""

from repro.harness.engine import ENGINE, ScenarioSpec
from repro.harness.report import format_figure_table, format_security_matrix
from repro.servers.base import Request, Response, Server, ServerError
from repro.servers.profile import ServerProfile, register_profile

#: The buggy size estimate: entries are copied through a 32-byte buffer.
ENTRY_BUFFER_SIZE = 32


class GuestbookServer(Server):
    """A toy web guestbook that copies each entry through a fixed buffer."""

    name = "guestbook"

    def startup(self) -> None:
        self.entries = list(self.config.get("entries", [b"welcome!"]))

    def handle(self, request: Request) -> Response:
        if request.kind == "sign":
            text = bytes(request.payload.get("text", b""))
            self.entries.append(self._copy_through_buffer(text))
            return Response.ok(detail="signed")
        if request.kind == "view":
            index = int(request.payload.get("index", 0))
            if index >= len(self.entries):
                raise ServerError(f"no entry {index}")
            return Response.ok(body=self.entries[index])
        raise ServerError(f"unknown request kind {request.kind!r}")

    def _copy_through_buffer(self, text: bytes) -> bytes:
        """The vulnerable path: no bounds check against ENTRY_BUFFER_SIZE."""
        ctx = self.ctx
        ctx.set_site("guestbook.sign")
        buf = ctx.malloc(ENTRY_BUFFER_SIZE, name="entry_buffer")
        cursor = buf
        for byte in text:  # one byte too many overflows the buffer
            ctx.mem.write_byte(cursor, byte)
            cursor = cursor + 1
        ctx.mem.write_byte(cursor, 0)
        stored = ctx.read_c_string(buf)
        ctx.free(buf)
        ctx.set_site("")
        return stored


register_profile(
    ServerProfile(
        name="guestbook",
        server_cls=GuestbookServer,
        figure_rows=("view", "sign"),
        request_factory=lambda kind, index: (
            Request(kind="view", payload={"index": 0})
            if kind == "view"
            else Request(kind="sign", payload={"text": b"short note"})
        ),
        attack_request=lambda: Request(
            kind="sign",
            payload={"text": b"A" * (4 * ENTRY_BUFFER_SIZE)},
            is_attack=True,
        ),
        follow_ups=lambda: [Request(kind="view", payload={"index": 0})],
        description="example plugin server with an undersized entry buffer",
    )
)


def main() -> None:
    print("Guestbook request times (a figure the paper never had):\n")
    rows = ENGINE.run(
        ScenarioSpec(server="guestbook", workload="performance", repetitions=10)
    )
    print(format_figure_table(rows))

    print("\nThe oversized entry, delivered to each build:\n")
    cells = ENGINE.run_security_matrix(
        servers=["guestbook"],
        policies=("standard", "bounds-check", "failure-oblivious"),
    )
    print(format_security_matrix(cells, title="Guestbook under the overflow entry"))

    print(
        "\nSame story as the paper's servers: the unchecked build corrupts its"
        " heap, the bounds-check build drops the request processing loop, and"
        " the failure-oblivious build truncates the entry and keeps serving —"
        " and the harness needed zero edits to learn about this server."
    )


if __name__ == "__main__":
    main()
