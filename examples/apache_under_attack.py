#!/usr/bin/env python3
"""Apache under attack: the pre-fork pool and the throughput experiment (§4.3.2).

The script configures the simulated Apache with the vulnerable rewrite rule,
then loads a pool of worker children with a mix of attack URLs and legitimate
home-page fetches under each build.  The Standard and Bounds Check children
die on every attack and must be re-forked; the failure-oblivious children
discard the extra capture offsets and keep serving, so legitimate throughput
stays high.

Run with:  python examples/apache_under_attack.py
"""

from repro.harness.report import format_simple_table
from repro.harness.throughput import run_throughput_experiment, throughput_ratio


def main() -> None:
    print("Loading the child pool with 60% attack / 40% legitimate traffic...\n")
    results = run_throughput_experiment(
        attack_fraction=0.6, total_requests=240, pool_size=4
    )

    rows = []
    for policy, result in results.items():
        rows.append(
            (
                policy,
                result.legitimate_served,
                result.attack_requests,
                result.child_deaths,
                f"{result.restart_seconds * 1000:.1f} ms",
                f"{result.throughput_rps:.1f} req/s",
            )
        )
    print(
        format_simple_table(
            ["build", "legit served", "attacks", "child deaths", "re-fork time", "legit throughput"],
            rows,
            title="Apache throughput while under attack",
        )
    )

    fo_over_bc = throughput_ratio(results, "failure-oblivious", "bounds-check")
    fo_over_std = throughput_ratio(results, "failure-oblivious", "standard")
    print(
        f"\nfailure-oblivious vs bounds-check : {fo_over_bc:.1f}x  (paper reports ~5.7x)\n"
        f"failure-oblivious vs standard     : {fo_over_std:.1f}x  (paper reports ~4.8x)\n"
        "\nThe ordering — failure-oblivious far ahead of both restarting builds —"
        " is the result the paper reports; the exact ratio depends on how expensive"
        " forking a child is relative to serving a page."
    )


if __name__ == "__main__":
    main()
