"""Benchmark regenerating Figure 3: Apache request processing times."""

import pytest

from benchmarks.conftest import bench_workers, record_table, served_request_runner
from repro.harness.experiments import run_experiment

KINDS = ["small", "large"]


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("policy", ["standard", "failure-oblivious"])
def test_apache_request_time(benchmark, policy, kind):
    """Time one Apache request under one build (raw cell of Figure 3)."""
    benchmark(served_request_runner("apache", policy, kind))


def test_fig3_table(benchmark):
    """Regenerate the full Figure 3 table; Apache overhead should be small (~1.0x)."""
    output = benchmark.pedantic(
        lambda: run_experiment("fig3", repetitions=15, scale=1.0, workers=bench_workers()), rounds=1, iterations=1
    )
    record_table("Figure 3 (Apache request processing times)", output.table)
    for row in output.data:
        assert row.slowdown < 1.8, "the I/O-dominated server must see only small overhead"
