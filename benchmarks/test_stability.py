"""Benchmark regenerating the stability experiments (§4.2.4-§4.6.4)."""

import pytest

from benchmarks.conftest import record_table
from repro.harness.experiments import run_experiment
from repro.harness.stability import run_stability_experiment
from repro.servers import SERVER_CLASSES


@pytest.mark.parametrize("server_name", sorted(SERVER_CLASSES))
def test_stability_run_failure_oblivious(benchmark, server_name):
    """Time a mixed workload with periodic attacks under the FO build of each server."""
    result = benchmark.pedantic(
        lambda: run_stability_experiment(
            server_name, "failure-oblivious", total_requests=60, attack_every=10, scale=0.2
        ),
        rounds=1,
        iterations=1,
    )
    assert result.flawless
    assert result.attacks_survived == result.attack_requests


def test_stability_table(benchmark):
    """Regenerate the all-servers stability summary table."""
    output = benchmark.pedantic(
        lambda: run_experiment("exp-stability", total_requests=80, attack_every=10, scale=0.25),
        rounds=1,
        iterations=1,
    )
    record_table("Failure-oblivious stability under periodic attack (§4.x.4)", output.table)
    assert all(result.flawless for result in output.data.values())
