"""Benchmarks for the §5.1 variants and the manufactured-value-sequence ablation."""

import pytest

from benchmarks.conftest import record_table
from repro.core.manufacture import ManufacturedValueSequence, ZeroValueSequence
from repro.core.policies import FailureObliviousPolicy
from repro.errors import RequestOutcome
from repro.harness.experiments import run_experiment
from repro.servers.base import Request
from repro.servers.midnight_commander import MidnightCommanderServer
from repro.workloads.benign import midnight_commander_vfs_files


@pytest.mark.parametrize("policy", ["failure-oblivious", "boundless", "redirect"])
def test_variant_attack_scenario_cost(benchmark, policy):
    """Time the Mutt attack scenario under each §5.1 continuation-code variant."""
    from repro.harness.runner import run_attack_scenario

    result = benchmark.pedantic(
        lambda: run_attack_scenario("mutt", policy, scale=0.2), rounds=3, iterations=1
    )
    assert result.continued_service


def test_variants_table(benchmark):
    """Regenerate the §5.1 variants matrix (boundless and redirect also work)."""
    output = benchmark.pedantic(
        lambda: run_experiment("exp-variants", scale=0.25), rounds=1, iterations=1
    )
    record_table("§5.1 continuation-code variants", output.table)
    assert all(output.data["survived"].values())


def _mc_with_sequence(sequence_factory):
    config = {"vfs_files": midnight_commander_vfs_files(directory_bytes=32 * 1024)}
    server = MidnightCommanderServer(
        lambda: FailureObliviousPolicy(sequence=sequence_factory()), config=config
    )
    server.start()
    return server


def test_value_sequence_ablation(benchmark):
    """§3 ablation: the paper's cycling sequence terminates the '/'-search loop,
    a constant all-zero sequence leaves it spinning (observable as HUNG)."""

    def run_ablation():
        paper = _mc_with_sequence(ManufacturedValueSequence)
        zeros = _mc_with_sequence(ZeroValueSequence)
        request = Request(kind="find_component", payload={"name": "noslashinthisname"})
        return (
            paper.process(Request(kind="find_component", payload={"name": "noslashinthisname"})),
            zeros.process(request),
        )

    paper_result, zero_result = benchmark.pedantic(run_ablation, rounds=3, iterations=1)
    assert paper_result.outcome is RequestOutcome.SERVED
    assert zero_result.outcome is RequestOutcome.HUNG
    record_table(
        "Manufactured value sequence ablation (§3)",
        "paper sequence -> {}\nall-zero sequence -> {}".format(
            paper_result.outcome.value, zero_result.outcome.value
        ),
    )
