"""Benchmark regenerating Figure 2: Pine request processing times."""

import pytest

from benchmarks.conftest import bench_workers, record_table, served_request_runner
from repro.harness.experiments import run_experiment

KINDS = ["read", "compose", "move"]


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("policy", ["standard", "failure-oblivious"])
def test_pine_request_time(benchmark, policy, kind):
    """Time one Pine request under one build (raw cell of Figure 2)."""
    benchmark(served_request_runner("pine", policy, kind))


def test_fig2_table(benchmark):
    """Regenerate the full Figure 2 table (Standard vs Failure Oblivious, slowdowns)."""
    output = benchmark.pedantic(
        lambda: run_experiment("fig2", repetitions=15, scale=0.5, workers=bench_workers()), rounds=1, iterations=1
    )
    record_table("Figure 2 (Pine request processing times)", output.table)
    for row in output.data:
        assert row.failure_oblivious.mean_ms < 100, "interactive pauses must stay imperceptible"
