"""Benchmark regenerating Figure 6: Mutt request processing times (plus Figure 1's routine)."""

import pytest

from benchmarks.conftest import bench_workers, record_table, served_request_runner
from repro.core.policies import FailureObliviousPolicy, StandardPolicy
from repro.harness.experiments import run_experiment
from repro.memory.context import MemoryContext
from repro.servers.mutt import utf8_to_utf7

KINDS = ["read", "move"]


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("policy", ["standard", "failure-oblivious"])
def test_mutt_request_time(benchmark, policy, kind):
    """Time one Mutt request under one build (raw cell of Figure 6)."""
    benchmark(served_request_runner("mutt", policy, kind))


@pytest.mark.parametrize("policy_cls", [StandardPolicy, FailureObliviousPolicy],
                         ids=["standard", "failure-oblivious"])
def test_figure1_conversion_cost(benchmark, policy_cls):
    """Time the Figure 1 conversion routine itself on a benign folder name."""
    ctx = MemoryContext(policy_cls())
    name = "archive/résumés-2004".encode("utf-8")
    source = ctx.alloc_c_string(name, name="folder")

    def convert():
        result = utf8_to_utf7(ctx, source, len(name))
        ctx.free(result)

    benchmark(convert)


def test_fig6_table(benchmark):
    """Regenerate the full Figure 6 table (read/move)."""
    output = benchmark.pedantic(
        lambda: run_experiment("fig6", repetitions=15, scale=0.5, workers=bench_workers()), rounds=1, iterations=1
    )
    record_table("Figure 6 (Mutt request processing times)", output.table)
    for row in output.data:
        assert row.failure_oblivious.mean_ms < 100, "interactive pauses must stay imperceptible"
