"""Shared helpers for the benchmark suite.

Every module in this directory regenerates one table or figure from the
paper's evaluation section (see DESIGN.md's experiment index).  Two kinds of
measurements coexist:

* ``benchmark`` fixtures time a single representative request under a given
  build, giving pytest-benchmark's statistics for the raw request cost; and
* "table" benchmarks run the corresponding experiment from
  :mod:`repro.harness.experiments` and print the full reproduction table so
  the run's output can be compared side by side with the paper.

Tables printed during the run are also appended to ``benchmarks/results.txt``
so a benchmark run leaves a written record.
"""

from __future__ import annotations

import os
import re
from typing import Callable, Dict, Optional

from repro.harness.engine import ENGINE

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")

_RESULTS_HEADER = "failure-oblivious computing reproduction: benchmark tables\n"
_RULE = "=" * 72
_SECTION_RE = re.compile(
    rf"\n{_RULE}\n(.*?)\n{_RULE}\n(.*?)(?=\n{_RULE}\n|\Z)", re.S
)


def bench_workers() -> int:
    """Process count for table benchmarks that fan out via ``run_many``.

    Controlled by ``REPRO_BENCH_WORKERS`` (0 or unset = serial), so CI and
    local runs can exercise the pooled path without editing the suite.
    """
    try:
        return int(os.environ.get("REPRO_BENCH_WORKERS", "0"))
    except ValueError:  # pragma: no cover - malformed env var
        return 0


#: Sections of the results file, keyed by table title; loaded lazily from the
#: committed file by the first ``record_table`` call of the session.
_results_sections: Optional[Dict[str, str]] = None


def _load_sections() -> Dict[str, str]:
    """Parse the committed results file back into {title: table text}."""
    try:
        with open(RESULTS_PATH, encoding="utf-8") as handle:
            content = handle.read()
    except OSError:
        return {}
    return {
        title: body.strip("\n")
        for title, body in _SECTION_RE.findall(content)
    }


def record_table(title: str, table_text: str) -> None:
    """Print a reproduction table and merge it into the results file.

    The file is rewritten with its sections in sorted title order, and
    sections this session did not regenerate (e.g. under a ``-k`` filter)
    are carried over from the committed file — so a diff of ``results.txt``
    shows exactly the tables whose content actually changed, never
    reordering or truncation churn.
    """
    global _results_sections
    banner = f"\n{_RULE}\n{title}\n{_RULE}\n"
    print(banner + table_text)
    try:
        if _results_sections is None:
            _results_sections = _load_sections()
        _results_sections[title] = table_text.rstrip("\n")
        with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
            handle.write(_RESULTS_HEADER)
            for name in sorted(_results_sections):
                handle.write(f"\n{_RULE}\n{name}\n{_RULE}\n")
                handle.write(_results_sections[name] + "\n")
    except OSError:  # pragma: no cover - the results file is best effort
        pass


def served_request_runner(server_name: str, policy_name: str, kind: str,
                          scale: float = 0.5) -> Callable[[], None]:
    """Build a started server and return a zero-argument callable serving one request.

    The callable is what the ``benchmark`` fixture times; request construction
    and any per-iteration state restoration are included (they are part of
    serving a request in the real system too, and identical across builds).
    """
    profile = ENGINE.profile(server_name)
    server = ENGINE.build_server(server_name, policy_name, scale=scale)
    boot = server.start()
    if boot.fatal:  # pragma: no cover - benign configs always boot
        raise RuntimeError(f"{server_name} failed to boot under {policy_name}")
    factory = profile.request_factory_for(kind)
    reset = profile.reset_hook_for(kind)
    counter = {"index": 0}

    def run_once() -> None:
        index = counter["index"]
        counter["index"] = index + 1
        if reset is not None:
            reset(server, index)
        result = server.process(factory(index))
        if result.fatal:  # pragma: no cover - benign workloads never kill servers
            raise RuntimeError(f"{server_name} died during benchmarking: {result.error}")

    return run_once
