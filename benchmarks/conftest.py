"""Shared helpers for the benchmark suite.

Every module in this directory regenerates one table or figure from the
paper's evaluation section (see DESIGN.md's experiment index).  Two kinds of
measurements coexist:

* ``benchmark`` fixtures time a single representative request under a given
  build, giving pytest-benchmark's statistics for the raw request cost; and
* "table" benchmarks run the corresponding experiment from
  :mod:`repro.harness.experiments` and print the full reproduction table so
  the run's output can be compared side by side with the paper.

Tables printed during the run are also appended to ``benchmarks/results.txt``
so a benchmark run leaves a written record.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.harness.engine import ENGINE

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def bench_workers() -> int:
    """Process count for table benchmarks that fan out via ``run_many``.

    Controlled by ``REPRO_BENCH_WORKERS`` (0 or unset = serial), so CI and
    local runs can exercise the pooled path without editing the suite.
    """
    try:
        return int(os.environ.get("REPRO_BENCH_WORKERS", "0"))
    except ValueError:  # pragma: no cover - malformed env var
        return 0


#: Whether this session has already truncated the results file.  Truncation
#: is lazy — done by the first ``record_table`` call — so sessions that run
#: only table-free modules (e.g. the substrate throughput benchmark alone)
#: leave the committed reproduction tables intact.
_results_file_fresh = False


def record_table(title: str, table_text: str) -> None:
    """Print a reproduction table and append it to the results file."""
    global _results_file_fresh
    banner = f"\n{'=' * 72}\n{title}\n{'=' * 72}\n"
    print(banner + table_text)
    try:
        with open(RESULTS_PATH, "a" if _results_file_fresh else "w", encoding="utf-8") as handle:
            if not _results_file_fresh:
                handle.write("failure-oblivious computing reproduction: benchmark tables\n")
            handle.write(banner + table_text + "\n")
        _results_file_fresh = True
    except OSError:  # pragma: no cover - the results file is best effort
        pass


def served_request_runner(server_name: str, policy_name: str, kind: str,
                          scale: float = 0.5) -> Callable[[], None]:
    """Build a started server and return a zero-argument callable serving one request.

    The callable is what the ``benchmark`` fixture times; request construction
    and any per-iteration state restoration are included (they are part of
    serving a request in the real system too, and identical across builds).
    """
    profile = ENGINE.profile(server_name)
    server = ENGINE.build_server(server_name, policy_name, scale=scale)
    boot = server.start()
    if boot.fatal:  # pragma: no cover - benign configs always boot
        raise RuntimeError(f"{server_name} failed to boot under {policy_name}")
    factory = profile.request_factory_for(kind)
    reset = profile.reset_hook_for(kind)
    counter = {"index": 0}

    def run_once() -> None:
        index = counter["index"]
        counter["index"] = index + 1
        if reset is not None:
            reset(server, index)
        result = server.process(factory(index))
        if result.fatal:  # pragma: no cover - benign workloads never kill servers
            raise RuntimeError(f"{server_name} died during benchmarking: {result.error}")

    return run_once
