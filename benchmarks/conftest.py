"""Shared helpers for the benchmark suite.

Every module in this directory regenerates one table or figure from the
paper's evaluation section (see DESIGN.md's experiment index).  Two kinds of
measurements coexist:

* ``benchmark`` fixtures time a single representative request under a given
  build, giving pytest-benchmark's statistics for the raw request cost; and
* "table" benchmarks run the corresponding experiment from
  :mod:`repro.harness.experiments` and print the full reproduction table so
  the run's output can be compared side by side with the paper.

Tables printed during the run are also appended to ``benchmarks/results.txt``
so a benchmark run leaves a written record.
"""

from __future__ import annotations

import os
from typing import Callable

import pytest

from repro.harness.engine import ENGINE

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def record_table(title: str, table_text: str) -> None:
    """Print a reproduction table and append it to the results file."""
    banner = f"\n{'=' * 72}\n{title}\n{'=' * 72}\n"
    print(banner + table_text)
    try:
        with open(RESULTS_PATH, "a", encoding="utf-8") as handle:
            handle.write(banner + table_text + "\n")
    except OSError:  # pragma: no cover - the results file is best effort
        pass


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    """Start each benchmark session with an empty results file."""
    try:
        with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
            handle.write("failure-oblivious computing reproduction: benchmark tables\n")
    except OSError:  # pragma: no cover
        pass
    yield


def served_request_runner(server_name: str, policy_name: str, kind: str,
                          scale: float = 0.5) -> Callable[[], None]:
    """Build a started server and return a zero-argument callable serving one request.

    The callable is what the ``benchmark`` fixture times; request construction
    and any per-iteration state restoration are included (they are part of
    serving a request in the real system too, and identical across builds).
    """
    profile = ENGINE.profile(server_name)
    server = ENGINE.build_server(server_name, policy_name, scale=scale)
    boot = server.start()
    if boot.fatal:  # pragma: no cover - benign configs always boot
        raise RuntimeError(f"{server_name} failed to boot under {policy_name}")
    factory = profile.request_factory_for(kind)
    reset = profile.reset_hook_for(kind)
    counter = {"index": 0}

    def run_once() -> None:
        index = counter["index"]
        counter["index"] = index + 1
        if reset is not None:
            reset(server, index)
        result = server.process(factory(index))
        if result.fatal:  # pragma: no cover - benign workloads never kill servers
            raise RuntimeError(f"{server_name} died during benchmarking: {result.error}")

    return run_once
