"""Benchmark regenerating the Apache throughput-under-attack experiment (§4.3.2)."""

import pytest

from benchmarks.conftest import record_table
from repro.core.policies import POLICY_NAMES
from repro.harness.experiments import run_experiment
from repro.servers.apache import ChildProcessPool
from repro.workloads.attacks import apache_attack_request, apache_vulnerable_config


@pytest.mark.parametrize("policy", ["standard", "bounds-check", "failure-oblivious"])
def test_attack_request_cost_per_build(benchmark, policy):
    """Time one attack request against a single child under each build.

    For the crashing builds this includes the cost of replacing the dead
    child, which is exactly the overhead the paper's throughput comparison
    attributes to process management.
    """
    pool = ChildProcessPool(POLICY_NAMES[policy], pool_size=1, config=apache_vulnerable_config())

    def one_attack():
        pool.dispatch(apache_attack_request())

    benchmark(one_attack)


def test_throughput_table(benchmark):
    """Regenerate the throughput comparison (FO should dominate both other builds)."""
    output = benchmark.pedantic(
        lambda: run_experiment("exp-throughput", attack_fraction=0.6, total_requests=180, pool_size=4),
        rounds=1,
        iterations=1,
    )
    record_table("Apache throughput under attack (§4.3.2)",
                 output.table + "\n" + "\n".join(output.notes))
    assert output.data["fo_over_bc"] > 2.0
    assert output.data["fo_over_std"] > 2.0
