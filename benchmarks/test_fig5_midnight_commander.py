"""Benchmark regenerating Figure 5: Midnight Commander request processing times."""

import pytest

from benchmarks.conftest import bench_workers, record_table, served_request_runner
from repro.harness.experiments import run_experiment

KINDS = ["copy", "move", "mkdir", "delete"]


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("policy", ["standard", "failure-oblivious"])
def test_midnight_commander_request_time(benchmark, policy, kind):
    """Time one file-manager operation under one build (raw cell of Figure 5)."""
    benchmark(served_request_runner("midnight-commander", policy, kind, scale=0.25))


def test_fig5_table(benchmark):
    """Regenerate the full Figure 5 table (copy/move/mkdir/delete)."""
    output = benchmark.pedantic(
        lambda: run_experiment("fig5", repetitions=15, scale=0.5, workers=bench_workers()), rounds=1, iterations=1
    )
    record_table("Figure 5 (Midnight Commander request processing times)", output.table)
    for row in output.data:
        assert row.failure_oblivious.mean_ms < 1000, "file operations stay interactive"
