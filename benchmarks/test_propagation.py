"""Benchmark regenerating the error-propagation-distance measurements (§1.2)."""

import pytest

from benchmarks.conftest import record_table
from repro.analysis.propagation import measure_propagation
from repro.harness.experiments import run_experiment
from repro.workloads.streams import mixed_stream


@pytest.mark.parametrize("server_name", ["apache", "sendmail", "mutt"])
def test_propagation_measurement_cost(benchmark, server_name):
    """Time the propagation measurement for one server under the FO build."""
    stream = list(mixed_stream(server_name, total_requests=24, attack_every=6))
    report = benchmark.pedantic(
        lambda: measure_propagation(server_name, "failure-oblivious", stream, scale=0.2),
        rounds=1,
        iterations=1,
    )
    assert report.short_propagation


def test_propagation_table(benchmark):
    """Regenerate the propagation-distance summary for all five servers."""
    output = benchmark.pedantic(
        lambda: run_experiment("exp-propagation", total_requests=32, attack_every=8, scale=0.2),
        rounds=1,
        iterations=1,
    )
    record_table("Error propagation distances (§1.2)", output.table)
    assert all(report.short_propagation for report in output.data.values())


def test_checking_overhead_counters(benchmark):
    """Measure the raw number of bounds checks per request — the §4.7 overhead knob."""
    from repro.harness.runner import build_server
    from repro.workloads.benign import benign_requests_for

    def count_checks():
        server = build_server("sendmail", "failure-oblivious", scale=0.2)
        server.start()
        before = server.policy.stats.checks_performed
        server.process(benign_requests_for("sendmail", "recv_large", 1)[0])
        return server.policy.stats.checks_performed - before

    checks = benchmark.pedantic(count_checks, rounds=3, iterations=1)
    assert checks > 1000  # byte-at-a-time spooling performs thousands of checks
