"""Benchmark regenerating the security/resilience matrix (§4.2.2-§4.6.2)."""

import pytest

from benchmarks.conftest import bench_workers, record_table
from repro.harness.experiments import run_experiment
from repro.harness.runner import run_attack_scenario
from repro.servers import SERVER_CLASSES


@pytest.mark.parametrize("server_name", sorted(SERVER_CLASSES))
def test_attack_scenario_cost_failure_oblivious(benchmark, server_name):
    """Time the full attack scenario (boot, attack, follow-ups) under the FO build."""
    result = benchmark.pedantic(
        lambda: run_attack_scenario(server_name, "failure-oblivious", scale=0.2),
        rounds=3,
        iterations=1,
    )
    assert result.continued_service


def test_security_matrix_table(benchmark):
    """Regenerate the full 5-server x 3-build security matrix."""
    output = benchmark.pedantic(
        lambda: run_experiment("tab-security", scale=0.25, workers=bench_workers()),
        rounds=1, iterations=1
    )
    record_table("Security and resilience matrix (§4.2.2-§4.6.2)", output.table)
    assessments = output.data["assessments"]
    fo = [a for a in assessments if a.policy == "failure-oblivious"]
    assert all(a.invulnerable and a.continued_service for a in fo)
