"""Benchmark regenerating Figure 4: Sendmail request processing times."""

import pytest

from benchmarks.conftest import bench_workers, record_table, served_request_runner
from repro.harness.experiments import run_experiment

KINDS = ["recv_small", "recv_large", "send_small", "send_large"]


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("policy", ["standard", "failure-oblivious"])
def test_sendmail_request_time(benchmark, policy, kind):
    """Time one Sendmail transfer under one build (raw cell of Figure 4)."""
    benchmark(served_request_runner("sendmail", policy, kind))


def test_fig4_table(benchmark):
    """Regenerate the full Figure 4 table (receive/send, small/large bodies)."""
    output = benchmark.pedantic(
        lambda: run_experiment("fig4", repetitions=15, scale=0.5, workers=bench_workers()), rounds=1, iterations=1
    )
    record_table("Figure 4 (Sendmail request processing times)", output.table)
    slowdowns = [row.slowdown for row in output.data]
    assert all(s > 0.8 for s in slowdowns), "checking must not make Sendmail faster"
