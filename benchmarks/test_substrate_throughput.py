"""Substrate throughput benchmark: the perf trajectory of the memory fast path.

Measures bytes/second through the policy-mediated substrate for the span
fast path (the shipped ``cstring`` implementation) against a per-byte
reference (the pre-fast-path byte loops frozen in
:mod:`tests.reference_cstring`, shared with the equivalence suite), for every
policy, plus the wall clock of each performance figure.  Results are written
to ``BENCH_substrate.json`` at the repository root so the throughput
trajectory is tracked in version control from PR 2 on.

Environment knobs
-----------------
``REPRO_BENCH_FULL=1``
    Use full-size buffers (1 MiB spans) instead of the smoke sizes, for
    regenerating the committed baseline.  ``BENCH_substrate.json`` is only
    (over)written in this mode; smoke runs — including ENFORCE-only gate
    reproductions — leave the committed baseline untouched.
``REPRO_BENCH_ENFORCE=1``
    Fail if the measured speedup over the per-byte reference regresses more
    than 30% against the committed ``BENCH_substrate.json`` (the CI smoke
    job sets this).
``REPRO_BENCH_WORKERS``
    Worker count recorded in the JSON and used for the figure wall-clock
    sweep (see :func:`benchmarks.conftest.bench_workers`).
"""

from __future__ import annotations

import gc
import json
import os
import platform
import time

import pytest

from benchmarks.conftest import bench_workers
from repro.core.policies import POLICY_NAMES
from repro.fleet.scheduler import InstanceSpec, run_fleet
from repro.harness.experiments import run_experiment
from repro.harness.soak import run_soak_experiment
from repro.memory import cstring
from repro.memory.context import MemoryContext
from repro.servers import SERVER_CLASSES
from repro.servers.profile import get_profile
from tests.reference_cstring import ref_strcpy

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_substrate.json")

FULL = os.environ.get("REPRO_BENCH_FULL") == "1"
ENFORCE = os.environ.get("REPRO_BENCH_ENFORCE") == "1"

#: Bytes moved per fast-path measurement (spans are the unit of work now).
FAST_BYTES = (1 << 20) if FULL else (1 << 16)
#: Bytes moved per per-byte-reference measurement (three decimal orders
#: slower, so it gets a proportionally smaller buffer).
REFERENCE_BYTES = (1 << 14) if FULL else (1 << 12)
#: The acceptance floor: the fast path must beat the per-byte reference by at
#: least this factor on the Standard and Boundless policies.
REQUIRED_SPEEDUP = 5.0
#: Maximum tolerated regression against the committed baseline (CI gate).
REGRESSION_TOLERANCE = 0.30
#: The baseline speedup is capped before the tolerance is applied: measured
#: speedups span four decades run-to-run (the per-byte reference is timed in
#: tens of milliseconds), so gating on the raw ratio would flake.  Any real
#: breakage of the fast path collapses the speedup to ~1x, far below this cap.
BASELINE_SPEEDUP_CAP = 100.0

#: Payload of the out-of-bounds flood (PR 4): a long attack string copied
#: into a tiny buffer, so nearly every written byte is out of bounds and goes
#: through the policy continuation.  Sized to stay under the boundless
#: policy's default side-store capacity so its bulk-insert fast path (not the
#: capacity-crossing slow path) is what gets measured.
FLOOD_BYTES = (1 << 18) if FULL else (1 << 15)
#: Flood payload for the per-byte reference (umpteen times slower).
FLOOD_REFERENCE_BYTES = (1 << 13) if FULL else (1 << 11)
#: Size of the overflowed destination buffer.
FLOOD_DST_BYTES = 64
#: Policies with a surviving continuation: the flood completes under these
#: (bounds-check terminates at the first byte; standard segfaults).
FLOOD_POLICIES = ("failure-oblivious", "boundless", "redirect")
#: ISSUE 4 acceptance floor: the batched continuation must beat the per-byte
#: fallback by at least two decimal orders on every flood policy.
REQUIRED_OOB_SPEEDUP = 100.0
#: Baseline cap and factor for the OOB regression gate: fail only on an
#: order-of-magnitude collapse (the measured speedups sit between ~300x and
#: ~50000x run-to-run; a broken batched path collapses to ~1x).
OOB_BASELINE_SPEEDUP_CAP = 1000.0
OOB_REGRESSION_FACTOR = 10.0

#: ISSUE 5 — checkpointed process images.  The restart benchmark restores the
#: post-boot checkpoint against rebuilding the substrate and re-running
#: ``startup()``; these servers have the most expensive boots (Apache parses
#: its configuration byte by byte, Pine builds the message index).
RESTART_SERVERS = ("apache", "pine")
#: Boots per timing sample.
RESTART_ROUNDS = 30 if FULL else 10
RESTART_SCRATCH_ROUNDS = 8 if FULL else 4
#: Acceptance floor for the checkpoint restart: >=20x over from-scratch in the
#: committed full-mode baseline, gated at >=10x in CI fast mode (scheduler
#: noise shrinks the measured ratio, never the mechanism).
REQUIRED_RESTART_SPEEDUP = 20.0 if FULL else 10.0

#: PR 10 — self-healing recovery.  An incremental snapshot captures only the
#: blocks the last request dirtied, so it must be at least an order of
#: magnitude cheaper than a full checkpoint of the same space; and rolling
#: back to the last good snapshot must beat a from-scratch reboot by at
#: least the checkpoint-restart gate (the rollback is a block patch of the
#: live space — strictly less work than a full image restore).
REQUIRED_RECOVERY_DELTA_SPEEDUP = 10.0
RECOVERY_ROUNDS = 30 if FULL else 10
RECOVERY_SCRATCH_ROUNDS = 8 if FULL else 4
#: Heap size for the recovery measurements.  A full checkpoint is O(space)
#: while a delta snapshot is O(dirtied blocks), so the measurement uses a
#: long-lived-server heap; at toy sizes the delta's fixed bookkeeping cost
#: (allocator/object-table/policy capture) dominates and hides the mechanism.
RECOVERY_HEAP_BYTES = 16 * 1024 * 1024

#: Soak shape for the end-to-end gate: the §4.3.2 bounds-check-under-attack
#: flood, where every request kills the child and the monitor restarts it.
#: ``use_checkpoints=False`` reproduces the pre-checkpoint cost model (every
#: death pays a full reboot); the gate requires the checkpointed soak to beat
#: it by an order of magnitude.
SOAK_REQUESTS = 400 if FULL else 240
SOAK_ATTACK_EVERY = 1
SOAK_SHARDS = 8
SOAK_POLICIES = ("standard", "bounds-check", "failure-oblivious", "boundless", "redirect")
#: The order-of-magnitude gate holds in full mode (measured ~30x at full
#: sizes); smoke sizes amortize the per-shard clone worse and sit ~14x, so
#: the fast-mode floor drops to 8x — still far above the ~1x a broken
#: checkpoint path collapses to.
REQUIRED_SOAK_SPEEDUP = 10.0 if FULL else 8.0
#: Rounds for the gated soak cells (best observed rate, like _best_rate):
#: single noisy runs near the floor would flake the gate.
SOAK_ROUNDS = 3
SOAK_SCRATCH_ROUNDS = 2

#: ISSUE 6 — fleet soak service.  The fleet benchmark drives a heterogeneous
#: mix through the virtual-arrival-time scheduler: failure-oblivious survivors
#: on three server profiles plus a bounds-check Apache that dies on every
#: attack and restarts through its checkpoint, so the measured rate covers
#: template boot, clone fan-out, interleaved dispatch, O(dirty-bytes)
#: restarts, and streaming telemetry together.
FLEET_REQUESTS = 2000 if FULL else 600
FLEET_ATTACK_EVERY = 5
FLEET_SPECS = (
    ("apache", "failure-oblivious", 2),
    ("apache", "bounds-check", 1),
    ("pine", "failure-oblivious", 1),
    ("mutt", "failure-oblivious", 1),
)
#: Rounds for the gated fleet cell (best observed rate, like the soak gate).
FLEET_ROUNDS = 3 if FULL else 2
#: ISSUE 8 — pooled fleet dispatch.  The same heterogeneous mix is also run
#: through the fork pool; shared-memory template images and batched dispatch
#: are what make the pooled rate scale past the serial one.
FLEET_W4_WORKERS = 4
FLEET_W4_REQUESTS = 20000 if FULL else 2000
#: PR 6 full-mode pooled baseline (req/s at --workers 4); the v5 acceptance
#: floor is double it.
FLEET_W4_BASELINE_RPS = 908.0
FLEET_W4_FLOOR_FACTOR = 2.0

#: ISSUE 8 — shared-memory O(1) cloning.  The clone benchmark boots the same
#: Apache template on two heaps a decimal order apart and times adopting the
#: (shared) boot image into a fresh server.  The touched-block sparse restore
#: plus the shared payload make the per-clone cost a function of the bytes
#: the boot touched, not of the image size, so the ratio must stay flat.
CLONE_HEAP_SMALL = 4 * 1024 * 1024
CLONE_HEAP_LARGE = 40 * 1024 * 1024
CLONE_ROUNDS = 30 if FULL else 10
#: Acceptance ceiling for clone_seconds_large / clone_seconds_small.  Both
#: sides are measured in the same process moments apart, so machine speed
#: cancels; a restore that copies whole segments again blows past this at ~10x.
CLONE_RATIO_CEILING = 1.5

#: PR 9 — compiled mini-C on the span fast path.  The minic columns time the
#: interpreter twice over the same source: span-lowered (``lower=True``, the
#: shipped compile) against the frozen per-byte tree-walk (``lower=False``).
#: ``scanner`` is the raw lowered idiom (``while (*p) p++``); ``figure1`` is
#: the paper's Figure 1 ``utf8_to_utf7`` conversion, whose loops are *not*
#: lowerable (the double-read copy shape), so its columns track the plain
#: interpreter workload rate rather than a lowering speedup.
MINIC_SCAN_BYTES = (1 << 16) if FULL else (1 << 14)
#: Tree-walk payload: three decimal orders slower than the lowered scan, so
#: it gets a proportionally smaller buffer (like the per-byte cstring ref).
MINIC_TREE_WALK_BYTES = (1 << 11) if FULL else (1 << 9)
#: Figure 1 folder-name length per conversion call.
MINIC_FIGURE1_BYTES = (1 << 12) if FULL else (1 << 10)
#: Acceptance floor: the span-lowered scanner must beat the tree-walk by at
#: least 50x under the failure-oblivious build (measured ~1000x; a broken
#: lowering pass falls back to tree-walking and collapses to ~1x).
REQUIRED_MINIC_SPEEDUP = 50.0

#: The scanner benchmark source: the canonical lowered idiom.
MINIC_SCANNER_SOURCE = """
int scan(char *s) {
    char *p;
    p = s;
    while (*p) p++;
    return p - s;
}
"""


# -- measurement ---------------------------------------------------------------


def _best_rate(operation, payload_bytes, rounds=3):
    """Best observed bytes/second over a few rounds (minimizes scheduler noise)."""
    best = 0.0
    for _ in range(rounds):
        started = time.perf_counter()
        operation()
        elapsed = time.perf_counter() - started
        if elapsed > 0:
            best = max(best, payload_bytes / elapsed)
    return best


def _measure_policy(policy_name):
    """Measure fast-path and per-byte throughput under one policy."""
    policy_cls = POLICY_NAMES[policy_name]

    ctx = MemoryContext(policy_cls(), heap_size=8 * FAST_BYTES)
    src = ctx.alloc_c_string(b"x" * FAST_BYTES)
    dst = ctx.malloc(FAST_BYTES + 1)
    strcpy_rate = _best_rate(lambda: cstring.strcpy(ctx.mem, dst, src), FAST_BYTES)
    strlen_rate = _best_rate(lambda: cstring.strlen(ctx.mem, src), FAST_BYTES)

    ref_ctx = MemoryContext(policy_cls())
    ref_src = ref_ctx.alloc_c_string(b"x" * REFERENCE_BYTES)
    ref_dst = ref_ctx.malloc(REFERENCE_BYTES + 1)
    reference_rate = _best_rate(
        lambda: ref_strcpy(ref_ctx.mem, ref_dst, ref_src), REFERENCE_BYTES, rounds=1
    )

    return {
        "strcpy_bytes_per_sec": round(strcpy_rate),
        "strlen_bytes_per_sec": round(strlen_rate),
        "per_byte_strcpy_bytes_per_sec": round(reference_rate),
        "speedup_vs_per_byte": round(strcpy_rate / reference_rate, 1) if reference_rate else None,
    }


def _measure_flood(policy_name):
    """Measure the out-of-bounds flood under one continuation policy.

    The shipped path batches the invalid suffix into one policy decision per
    source span; the reference is the frozen per-byte loop (one decision, one
    error-log record, and one continuation event per byte).
    """
    policy_cls = POLICY_NAMES[policy_name]

    ctx = MemoryContext(policy_cls(), heap_size=8 * FLOOD_BYTES)
    src = ctx.alloc_c_string(b"x" * FLOOD_BYTES)
    dst = ctx.malloc(FLOOD_DST_BYTES)
    flood_rate = _best_rate(lambda: cstring.strcpy(ctx.mem, dst, src), FLOOD_BYTES)

    ref_ctx = MemoryContext(policy_cls())
    ref_src = ref_ctx.alloc_c_string(b"x" * FLOOD_REFERENCE_BYTES)
    ref_dst = ref_ctx.malloc(FLOOD_DST_BYTES)
    reference_rate = _best_rate(
        lambda: ref_strcpy(ref_ctx.mem, ref_dst, ref_src),
        FLOOD_REFERENCE_BYTES, rounds=1,
    )

    return {
        "oob_flood_bytes_per_sec": round(flood_rate),
        "per_byte_oob_flood_bytes_per_sec": round(reference_rate),
        "oob_speedup_vs_per_byte": round(flood_rate / reference_rate, 1) if reference_rate else None,
    }


def _measure_restart(server_name):
    """Time checkpoint restarts against from-scratch reboots for one server.

    Uses the bounds-check build (the restart-heavy build of §4.3.2) with the
    benchmark configuration; the ratio is policy-insensitive because the cost
    being removed is the boot itself.
    """
    from repro.harness.engine import ENGINE

    # Both timed sections run with the cyclic GC paused (timeit's own
    # methodology): a checkpoint restore is tens of microseconds, so a single
    # generation-2 collection landing inside the loop — increasingly likely
    # as earlier fixtures grow the heap — inflates the mean several-fold,
    # while the ~100x-longer scratch boots absorb the same pause invisibly.
    server = ENGINE.build_server(server_name, "bounds-check", scale=0.25)
    server.start()
    server.restart()  # warm the restore path once
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        for _ in range(RESTART_ROUNDS):
            server.restart()
        checkpoint_per_boot = (time.perf_counter() - started) / RESTART_ROUNDS
    finally:
        gc.enable()
    server.stop()

    # The scratch baseline reproduces the pre-checkpoint cost model exactly:
    # with checkpoint_restarts off no image is ever captured, so the measured
    # boot pays nothing the old code did not pay.
    scratch = ENGINE.build_server(server_name, "bounds-check", scale=0.25)
    scratch.checkpoint_restarts = False
    scratch.start()
    scratch.restart_from_scratch()  # warm
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        for _ in range(RESTART_SCRATCH_ROUNDS):
            scratch.restart_from_scratch()
        scratch_per_boot = (time.perf_counter() - started) / RESTART_SCRATCH_ROUNDS
    finally:
        gc.enable()
    scratch.stop()

    return {
        "checkpoint_restart_seconds_per_boot": round(checkpoint_per_boot, 6),
        "scratch_restart_seconds_per_boot": round(scratch_per_boot, 6),
        "restart_speedup_vs_scratch": (
            round(scratch_per_boot / checkpoint_per_boot, 1)
            if checkpoint_per_boot > 0 else None
        ),
    }


def _measure_soak():
    """End-to-end sharded-soak throughput per policy, plus the scratch baseline.

    Every policy gets a ``soak_requests_per_sec`` column (the attack flood
    against Apache, restarts through the checkpoint); the bounds-check cell is
    additionally measured with checkpoints disabled — the pre-checkpoint cost
    model — to compute the gated speedup.
    """
    def soak_once(policy_name, use_checkpoints=True):
        return run_soak_experiment(
            "apache", policy_name, total_requests=SOAK_REQUESTS,
            attack_every=SOAK_ATTACK_EVERY, shards=SOAK_SHARDS, workers=0,
            use_checkpoints=use_checkpoints,
        )

    policies = {}
    for policy_name in SOAK_POLICIES:
        rounds = SOAK_ROUNDS if policy_name == "bounds-check" else 1
        result = max(
            (soak_once(policy_name) for _ in range(rounds)),
            key=lambda r: r.requests_per_sec,
        )
        policies[policy_name] = {
            "soak_requests_per_sec": round(result.requests_per_sec, 1),
            "server_deaths": result.server_deaths,
            "restarts": result.restarts,
        }
    scratch = max(
        (soak_once("bounds-check", use_checkpoints=False)
         for _ in range(SOAK_SCRATCH_ROUNDS)),
        key=lambda r: r.requests_per_sec,
    )
    checkpoint_rps = policies["bounds-check"]["soak_requests_per_sec"]
    scratch_rps = round(scratch.requests_per_sec, 1)
    return {
        "server": "apache",
        "total_requests": SOAK_REQUESTS,
        "attack_every": SOAK_ATTACK_EVERY,
        "shards": SOAK_SHARDS,
        "policies": policies,
        "bounds_check_scratch_requests_per_sec": scratch_rps,
        "soak_speedup_vs_scratch": (
            round(checkpoint_rps / scratch_rps, 1) if scratch_rps else None
        ),
    }


def _measure_fleet():
    """End-to-end fleet-scheduler throughput over a heterogeneous mix.

    Serial dispatch (the reproducible path — pooled runs are tally-identical
    by construction, so the rate is the only thing ``--workers`` changes);
    the bounds-check Apache instance contributes one death-and-restart per
    attack, so ``restarts`` gauges the checkpoint-restore volume the measured
    rate absorbed.
    """
    specs = [
        InstanceSpec(server, policy, count=count, attack_every=FLEET_ATTACK_EVERY)
        for server, policy, count in FLEET_SPECS
    ]
    best = None
    for _ in range(FLEET_ROUNDS):
        result = run_fleet(specs, total_requests=FLEET_REQUESTS, seed=20040101)
        if best is None or result.requests_per_sec > best.requests_per_sec:
            best = result
    pooled = None
    for _ in range(FLEET_ROUNDS):
        result = run_fleet(
            specs, total_requests=FLEET_W4_REQUESTS, seed=20040101,
            workers=FLEET_W4_WORKERS,
        )
        if pooled is None or result.requests_per_sec > pooled.requests_per_sec:
            pooled = result
    return {
        "fleet_requests_per_sec": round(best.requests_per_sec, 1),
        "total_requests": best.total_requests,
        "instances": len(best.instances),
        "attack_every": FLEET_ATTACK_EVERY,
        "server_deaths": best.server_deaths,
        "restarts": best.restarts,
        "availability": round(best.availability, 4),
        "fleet_workers4_requests_per_sec": round(pooled.requests_per_sec, 1),
        "fleet_workers4_total_requests": pooled.total_requests,
        "fleet_workers4_workers": FLEET_W4_WORKERS,
    }


def _measure_clone():
    """Time adopting the (shared-memory) template image into a fresh server.

    The operation timed is exactly what the fleet scheduler and the pre-fork
    pool pay per clone: restore the template checkpoint into a live substrate
    plus reinstate the captured server state.  ``full_copy_seconds_large``
    is the reference cost of materializing the large image's payload once —
    what a deep-copy clone would pay before even starting the restore.
    """
    from dataclasses import replace

    from repro.memory.shared_image import SharedImageStore
    from repro.workloads.attacks import apache_vulnerable_config

    def time_clone(heap_size):
        server_cls = SERVER_CLASSES["apache"]
        policy_cls = POLICY_NAMES["failure-oblivious"]
        template = server_cls(
            policy_cls, config=apache_vulnerable_config(), heap_size=heap_size
        )
        boot = template.start()
        if boot.fatal:  # pragma: no cover - the benchmark config always boots
            raise RuntimeError("apache template failed to boot")
        image = template.boot_image
        image_bytes = sum(
            len(contents) for _name, _base, contents in image.ctx.space.segments
        )
        with SharedImageStore() as store:
            shared = replace(image, ctx=store.share_image(image.ctx))
            clone = server_cls(
                policy_cls, config=apache_vulnerable_config(), heap_size=heap_size
            )
            clone.adopt_image(shared)  # warm the restore path once
            gc.collect()
            gc.disable()
            try:
                best = float("inf")
                for _ in range(CLONE_ROUNDS):
                    started = time.perf_counter()
                    clone.adopt_image(shared)
                    best = min(best, time.perf_counter() - started)
            finally:
                gc.enable()
            started = time.perf_counter()
            for _name, _base, contents in shared.ctx.space.segments:
                bytes(contents)
            full_copy = time.perf_counter() - started
            clone.stop()
        template.stop()
        return image_bytes, best, full_copy

    small_bytes, small_clone, _ = time_clone(CLONE_HEAP_SMALL)
    large_bytes, large_clone, large_copy = time_clone(CLONE_HEAP_LARGE)
    return {
        "image_small_bytes": small_bytes,
        "image_large_bytes": large_bytes,
        "clone_seconds_small": round(small_clone, 6),
        "clone_seconds_large": round(large_clone, 6),
        "clone_cost_ratio_10x_image": (
            round(large_clone / small_clone, 2) if small_clone > 0 else None
        ),
        "full_copy_seconds_large": round(large_copy, 6),
        "rounds": CLONE_ROUNDS,
    }


def _measure_minic():
    """Time span-lowered mini-C against the frozen tree-walk interpreter.

    Both builds run under the failure-oblivious policy (the paper's headline
    build).  Repeated calls reuse the instance's interned argument string,
    so the scanner numbers measure the loop, not allocation; the Figure 1
    conversion allocates its output per call, which is freed between rounds
    to keep the heap flat.
    """
    from repro.minic.figure1 import FIGURE1_SOURCE
    from repro.minic.interpreter import TypedPointer
    from repro.minic.lower import compile_program, lowered_count

    policy_cls = POLICY_NAMES["failure-oblivious"]

    def scan_rate(lower, payload_bytes):
        program = compile_program(MINIC_SCANNER_SOURCE, lower=lower)
        if lower:
            assert lowered_count(program.unit) == 1
        instance = program.instantiate(policy_cls())
        payload = b"x" * payload_bytes
        instance.call("scan", payload)  # warm (interns the argument string)
        return _best_rate(lambda: instance.call("scan", payload), payload_bytes)

    def figure1_rate(lower, payload_bytes):
        program = compile_program(FIGURE1_SOURCE, lower=lower)
        instance = program.instantiate(policy_cls())
        name = b"x" * payload_bytes

        def convert():
            result = instance.call("utf8_to_utf7", name, len(name))
            if isinstance(result, TypedPointer) and not result.is_null:
                instance.ctx.free(result.pointer)

        convert()  # warm
        return _best_rate(convert, payload_bytes)

    scanner = scan_rate(True, MINIC_SCAN_BYTES)
    scanner_tree_walk = scan_rate(False, MINIC_TREE_WALK_BYTES)
    figure1 = figure1_rate(True, MINIC_FIGURE1_BYTES)
    figure1_tree_walk = figure1_rate(False, MINIC_TREE_WALK_BYTES)
    return {
        "scanner_bytes_per_sec": round(scanner),
        "scanner_tree_walk_bytes_per_sec": round(scanner_tree_walk),
        "scanner_speedup_vs_tree_walk": (
            round(scanner / scanner_tree_walk, 1) if scanner_tree_walk else None
        ),
        "figure1_bytes_per_sec": round(figure1),
        "figure1_tree_walk_bytes_per_sec": round(figure1_tree_walk),
        "figure1_speedup_vs_tree_walk": (
            round(figure1 / figure1_tree_walk, 1) if figure1_tree_walk else None
        ),
    }


def _measure_recovery():
    """Time the self-healing primitives (PR 10).

    Three costs per sample, with one benign Apache request processed between
    samples so every measurement sees a realistic dirty set (the request's
    scratch allocations), never an empty one.  Each cost is the *minimum*
    over its rounds — the operations are deterministic, so the minimum is
    the true cost and anything above it is scheduler noise (a single 1 ms
    preemption would otherwise shift a ~50 µs mean by an order of
    magnitude over 30 rounds):

    * a full checkpoint of the whole address space (the pre-delta cost);
    * an incremental snapshot appended to a
      :class:`~repro.memory.checkpoint_stream.CheckpointStream`;
    * a rollback to the newest snapshot (the supervisor's recovery path),
      against the from-scratch reboot it replaces.
    """
    from repro.memory.checkpoint_stream import CheckpointStream
    from repro.workloads.attacks import apache_vulnerable_config

    def build():
        server = SERVER_CLASSES["apache"](
            POLICY_NAMES["failure-oblivious"],
            config=apache_vulnerable_config(),
            heap_size=RECOVERY_HEAP_BYTES,
        )
        server.start()
        return server

    server = build()
    ctx = server.ctx
    request = get_profile("apache").make_request("small", index=0)

    def dirty():
        server.process(request)

    def timed(operation, rounds):
        gc.collect()
        gc.disable()
        try:
            best = None
            for _ in range(rounds):
                dirty()
                started = time.perf_counter()
                operation()
                elapsed = time.perf_counter() - started
                if best is None or elapsed < best:
                    best = elapsed
            return best
        finally:
            gc.enable()

    dirty()
    ctx.checkpoint()  # warm
    full_seconds = timed(ctx.checkpoint, RECOVERY_ROUNDS)

    stream = CheckpointStream(ctx)
    dirty()
    stream.snapshot()  # warm
    delta_seconds = timed(stream.snapshot, RECOVERY_ROUNDS)
    delta_bytes = stream.delta_bytes / len(stream.deltas)

    latest = stream.latest
    stream.restore(latest)  # warm
    rollback_seconds = timed(lambda: stream.restore(latest), RECOVERY_ROUNDS)
    server.stop()

    # The reboot the rollback replaces: no image captured, full boot paid.
    scratch = build()
    scratch.checkpoint_restarts = False
    scratch.restart_from_scratch()  # warm
    gc.collect()
    gc.disable()
    try:
        scratch_seconds = None
        for _ in range(RECOVERY_SCRATCH_ROUNDS):
            started = time.perf_counter()
            scratch.restart_from_scratch()
            elapsed = time.perf_counter() - started
            if scratch_seconds is None or elapsed < scratch_seconds:
                scratch_seconds = elapsed
    finally:
        gc.enable()
    scratch.stop()

    return {
        "full_checkpoint_seconds": round(full_seconds, 6),
        "delta_snapshot_seconds": round(delta_seconds, 6),
        "delta_speedup_vs_full": (
            round(full_seconds / delta_seconds, 1) if delta_seconds > 0 else None
        ),
        "delta_bytes_per_snapshot": round(delta_bytes),
        "rollback_seconds": round(rollback_seconds, 6),
        "scratch_reboot_seconds": round(scratch_seconds, 6),
        "rollback_speedup_vs_scratch": (
            round(scratch_seconds / rollback_seconds, 1)
            if rollback_seconds > 0 else None
        ),
        "rounds": RECOVERY_ROUNDS,
    }


def _load_baseline():
    try:
        with open(BENCH_PATH, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


@pytest.fixture(scope="module")
def flood_report():
    """Measure only the OOB flood — the cheap fixture the CI fast-mode flood
    step exercises (``-k oob_flood``) without paying for the policy sweep and
    the figure wall clocks."""
    return {name: _measure_flood(name) for name in FLOOD_POLICIES}


@pytest.fixture(scope="module")
def restart_report():
    """Measure checkpoint vs from-scratch restarts — the CI fast-mode restart
    step exercises this alone (``-k restart``)."""
    return {name: _measure_restart(name) for name in RESTART_SERVERS}


@pytest.fixture(scope="module")
def soak_report():
    """Measure the sharded attack-flood soak per policy plus its scratch
    baseline (``-k soak`` in the CI fast-mode step)."""
    return _measure_soak()


@pytest.fixture(scope="module")
def fleet_report():
    """Measure the heterogeneous fleet soak — the CI fast-mode fleet smoke
    step exercises this alone (``-k fleet``)."""
    return _measure_fleet()


@pytest.fixture(scope="module")
def clone_report():
    """Measure shared-image clone cost on 10x-apart heaps — the CI fast-mode
    clone smoke step exercises this alone (``-k clone``)."""
    return _measure_clone()


@pytest.fixture(scope="module")
def minic_report():
    """Measure span-lowered vs tree-walk mini-C — the CI fast-mode minic
    smoke step exercises this alone (``-k minic``)."""
    return _measure_minic()


@pytest.fixture(scope="module")
def recovery_report():
    """Measure delta snapshots vs full checkpoints and rollbacks vs reboots —
    the CI fast-mode recovery smoke step exercises this alone
    (``-k recovery``)."""
    return _measure_recovery()


@pytest.fixture(scope="module")
def substrate_report(flood_report, restart_report, soak_report, fleet_report,
                     clone_report, minic_report, recovery_report):
    """Measure every policy plus figure wall clocks; write BENCH_substrate.json."""
    baseline = _load_baseline()

    policies = {name: _measure_policy(name) for name in sorted(POLICY_NAMES)}
    for name in FLOOD_POLICIES:
        policies[name].update(flood_report[name])

    workers = bench_workers()
    figures = {}
    for server_name in sorted(SERVER_CLASSES):
        figure_number = get_profile(server_name).figure_number
        if figure_number is None:
            continue
        experiment_id = f"fig{figure_number}"
        started = time.perf_counter()
        run_experiment(experiment_id, repetitions=3, scale=0.25, workers=workers or None)
        figures[experiment_id] = round(time.perf_counter() - started, 3)

    report = {
        "schema": "repro-substrate-throughput/v7",
        "mode": "full" if FULL else "smoke",
        "python": platform.python_version(),
        "fast_payload_bytes": FAST_BYTES,
        "per_byte_payload_bytes": REFERENCE_BYTES,
        "workers": workers,
        "policies": policies,
        "restart": restart_report,
        "soak": soak_report,
        "fleet": fleet_report,
        "clone": clone_report,
        "minic": minic_report,
        "recovery": recovery_report,
        "figures_wall_clock_seconds": figures,
    }
    # Only full-mode runs overwrite the version-tracked baseline (the CI job
    # sets REPRO_BENCH_FULL together with REPRO_BENCH_ENFORCE).  Neither a
    # plain local pytest run nor a local ENFORCE-only gate reproduction may
    # silently replace the committed full-mode numbers with smoke numbers.
    if FULL:
        with open(BENCH_PATH, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return {"report": report, "baseline": baseline}


def test_fast_path_meets_speedup_floor(substrate_report):
    """The span fast path must beat the per-byte substrate ≥5x (ISSUE 2 target)."""
    policies = substrate_report["report"]["policies"]
    for policy_name in ("standard", "boundless"):
        speedup = policies[policy_name]["speedup_vs_per_byte"]
        assert speedup is not None and speedup >= REQUIRED_SPEEDUP, (
            f"{policy_name}: fast path only {speedup}x over the per-byte reference"
        )


def test_every_policy_produces_throughput_numbers(substrate_report):
    """All registered policies are measured and report sane positive rates."""
    policies = substrate_report["report"]["policies"]
    assert set(policies) == set(POLICY_NAMES)
    for name, row in policies.items():
        assert row["strcpy_bytes_per_sec"] > 0, name
        assert row["strlen_bytes_per_sec"] > 0, name


def test_oob_flood_meets_speedup_floor(flood_report):
    """ISSUE 4 acceptance: batched continuation ≥100x over the per-byte fallback."""
    for policy_name in FLOOD_POLICIES:
        speedup = flood_report[policy_name]["oob_speedup_vs_per_byte"]
        assert speedup is not None and speedup >= REQUIRED_OOB_SPEEDUP, (
            f"{policy_name}: OOB flood only {speedup}x over the per-byte fallback"
        )


def test_oob_flood_rates_are_positive(flood_report):
    for policy_name in FLOOD_POLICIES:
        row = flood_report[policy_name]
        assert row["oob_flood_bytes_per_sec"] > 0, policy_name
        assert row["per_byte_oob_flood_bytes_per_sec"] > 0, policy_name


def test_restart_speedup_floor(restart_report):
    """ISSUE 5 acceptance: checkpoint restarts >=20x (full) / >=10x (CI fast
    mode) over from-scratch reboots on the boot-heavy servers."""
    for server_name in RESTART_SERVERS:
        speedup = restart_report[server_name]["restart_speedup_vs_scratch"]
        assert speedup is not None and speedup >= REQUIRED_RESTART_SPEEDUP, (
            f"{server_name}: checkpoint restart only {speedup}x over from-scratch "
            f"(floor {REQUIRED_RESTART_SPEEDUP}x)"
        )


def test_restart_rates_are_positive(restart_report):
    for server_name in RESTART_SERVERS:
        row = restart_report[server_name]
        assert row["checkpoint_restart_seconds_per_boot"] > 0, server_name
        assert row["scratch_restart_seconds_per_boot"] > 0, server_name


def test_soak_checkpoint_speedup_floor(soak_report):
    """ISSUE 5 acceptance: the bounds-check-under-attack soak must run an
    order of magnitude faster than the pre-checkpoint (reboot-per-death)
    baseline measured in the same process."""
    speedup = soak_report["soak_speedup_vs_scratch"]
    assert speedup is not None and speedup >= REQUIRED_SOAK_SPEEDUP, (
        f"bounds-check attack soak only {speedup}x over the reboot-per-death "
        f"baseline (floor {REQUIRED_SOAK_SPEEDUP}x)"
    )


def test_soak_every_policy_produces_throughput(soak_report):
    assert set(soak_report["policies"]) == set(SOAK_POLICIES)
    for policy_name, row in soak_report["policies"].items():
        assert row["soak_requests_per_sec"] > 0, policy_name


def test_fleet_rates_are_positive(fleet_report):
    """ISSUE 6 acceptance: the fleet scheduler sustains throughput while the
    bounds-check instance dies (and is checkpoint-restarted) on every attack."""
    assert fleet_report["fleet_requests_per_sec"] > 0
    assert fleet_report["restarts"] > 0  # the bounds-check Apache keeps dying
    assert fleet_report["server_deaths"] >= fleet_report["restarts"]
    assert fleet_report["availability"] > 0.9  # FO majority keeps serving


def test_fleet_workers4_meets_speedup_floor(fleet_report):
    """ISSUE 8 acceptance: the pooled fleet (4 workers) must at least double
    the PR 6 pooled baseline.  Full mode only — smoke request counts are too
    small to amortize the fork pool's startup."""
    measured = fleet_report["fleet_workers4_requests_per_sec"]
    assert measured > 0
    if not FULL:
        pytest.skip("full mode only: smoke sizes underfeed the worker pool")
    floor = FLEET_W4_FLOOR_FACTOR * FLEET_W4_BASELINE_RPS
    assert measured >= floor, (
        f"pooled fleet only {measured} req/s at --workers {FLEET_W4_WORKERS} "
        f"(floor {floor} req/s = {FLEET_W4_FLOOR_FACTOR}x the PR 6 baseline)"
    )


def test_clone_cost_flat_as_image_grows(clone_report):
    """ISSUE 8 acceptance: growing the template image 10x must not grow the
    per-clone cost past 1.5x (the O(1)-clone gate, measured in-process)."""
    assert clone_report["image_large_bytes"] >= 8 * clone_report["image_small_bytes"], (
        "the large template image is not ~10x the small one; the ratio gate "
        "would be vacuous"
    )
    ratio = clone_report["clone_cost_ratio_10x_image"]
    assert ratio is not None and ratio <= CLONE_RATIO_CEILING, (
        f"clone cost grew {ratio}x when the image grew 10x "
        f"(ceiling {CLONE_RATIO_CEILING}x): cloning is no longer O(touched bytes)"
    )


def test_clone_times_are_positive(clone_report):
    assert clone_report["clone_seconds_small"] > 0
    assert clone_report["clone_seconds_large"] > 0
    assert clone_report["full_copy_seconds_large"] > 0


def test_no_fleet_workers_regression_against_committed_baseline(fleet_report):
    """CI gate: pooled fleet throughput must not collapse by an order of
    magnitude against the committed v5 ``fleet.fleet_workers4_*`` columns."""
    if not ENFORCE:
        pytest.skip("baseline enforcement disabled (set REPRO_BENCH_ENFORCE=1)")
    baseline = _load_baseline()
    if not baseline or "fleet" not in baseline:
        pytest.skip("no committed fleet baseline to compare against")
    reference = baseline["fleet"].get("fleet_workers4_requests_per_sec")
    if reference is None:
        pytest.skip("committed baseline predates the pooled-fleet column")
    measured = fleet_report["fleet_workers4_requests_per_sec"]
    floor = reference / OOB_REGRESSION_FACTOR
    assert measured >= floor, (
        f"pooled fleet throughput {measured} req/s collapsed an order of "
        f"magnitude below baseline {reference} req/s (gate floor {floor})"
    )


def test_no_fleet_regression_against_committed_baseline(fleet_report):
    """CI gate: fleet throughput must not collapse by an order of magnitude
    against the committed fleet baseline (schema v4 ``fleet.*`` columns)."""
    if not ENFORCE:
        pytest.skip("baseline enforcement disabled (set REPRO_BENCH_ENFORCE=1)")
    baseline = _load_baseline()
    if not baseline or "fleet" not in baseline:
        pytest.skip("no committed fleet baseline to compare against")
    reference = baseline["fleet"].get("fleet_requests_per_sec")
    measured = fleet_report["fleet_requests_per_sec"]
    if reference is None:
        pytest.skip("committed baseline predates the fleet column")
    floor = reference / OOB_REGRESSION_FACTOR
    assert measured >= floor, (
        f"fleet throughput {measured} req/s collapsed an order of magnitude "
        f"below baseline {reference} req/s (gate floor {floor})"
    )


def test_no_restart_regression_against_committed_baseline(restart_report):
    """CI gate: the checkpoint restart must not collapse by an order of
    magnitude against the committed restart baseline."""
    if not ENFORCE:
        pytest.skip("baseline enforcement disabled (set REPRO_BENCH_ENFORCE=1)")
    baseline = _load_baseline()
    if not baseline or "restart" not in baseline:
        pytest.skip("no committed restart baseline to compare against")
    for server_name, row in baseline["restart"].items():
        reference = row.get("restart_speedup_vs_scratch")
        measured = restart_report.get(server_name, {}).get("restart_speedup_vs_scratch")
        if reference is None or measured is None:
            continue
        floor = min(reference, OOB_BASELINE_SPEEDUP_CAP) / OOB_REGRESSION_FACTOR
        assert measured >= floor, (
            f"{server_name}: restart speedup {measured}x collapsed an order of "
            f"magnitude below baseline {reference}x (gate floor {floor}x)"
        )


def test_no_regression_against_committed_baseline(substrate_report):
    """CI gate: speedup must stay within 30% of the committed baseline."""
    if not ENFORCE:
        pytest.skip("baseline enforcement disabled (set REPRO_BENCH_ENFORCE=1)")
    baseline = substrate_report["baseline"]
    if not baseline or "policies" not in baseline:
        pytest.skip("no committed baseline to compare against")
    current = substrate_report["report"]["policies"]
    for name, row in baseline["policies"].items():
        reference = row.get("speedup_vs_per_byte")
        measured = current.get(name, {}).get("speedup_vs_per_byte")
        # Explicit None checks: a catastrophic regression rounds the measured
        # speedup to a *falsy* 0.0, which is exactly what must not skip the gate.
        if reference is None or measured is None:
            continue
        floor = min(reference, BASELINE_SPEEDUP_CAP) * (1.0 - REGRESSION_TOLERANCE)
        assert measured >= floor, (
            f"{name}: speedup {measured}x regressed >30% below baseline {reference}x "
            f"(gate floor {floor}x)"
        )


def test_minic_scanner_meets_speedup_floor(minic_report):
    """PR 9 acceptance: the span-lowered scanner loop must beat the frozen
    tree-walk interpreter by at least 50x under failure-oblivious."""
    speedup = minic_report["scanner_speedup_vs_tree_walk"]
    assert speedup is not None and speedup >= REQUIRED_MINIC_SPEEDUP, (
        f"span-lowered mini-C scanner only {speedup}x over the tree-walk "
        f"(floor {REQUIRED_MINIC_SPEEDUP}x): the lowering pass is not engaging"
    )


def test_minic_rates_are_positive(minic_report):
    for column, value in minic_report.items():
        assert value is not None and value > 0, column


def test_no_minic_regression_against_committed_baseline(minic_report):
    """CI gate: the lowered-scanner speedup must not collapse by an order of
    magnitude against the committed v6 ``minic.*`` columns."""
    if not ENFORCE:
        pytest.skip("baseline enforcement disabled (set REPRO_BENCH_ENFORCE=1)")
    baseline = _load_baseline()
    if not baseline or "minic" not in baseline:
        pytest.skip("committed baseline predates the minic columns (schema < v6)")
    reference = baseline["minic"].get("scanner_speedup_vs_tree_walk")
    measured = minic_report["scanner_speedup_vs_tree_walk"]
    if reference is None or measured is None:
        pytest.skip("no comparable minic scanner speedup in the baseline")
    floor = min(reference, OOB_BASELINE_SPEEDUP_CAP) / OOB_REGRESSION_FACTOR
    assert measured >= floor, (
        f"mini-C scanner speedup {measured}x collapsed an order of magnitude "
        f"below baseline {reference}x (gate floor {floor}x)"
    )


def test_recovery_delta_snapshot_meets_speedup_floor(recovery_report):
    """PR 10 acceptance: an incremental snapshot must be at least an order of
    magnitude cheaper than a full checkpoint of the same space."""
    speedup = recovery_report["delta_speedup_vs_full"]
    assert speedup is not None and speedup >= REQUIRED_RECOVERY_DELTA_SPEEDUP, (
        f"delta snapshot only {speedup}x over a full checkpoint "
        f"(floor {REQUIRED_RECOVERY_DELTA_SPEEDUP}x): the dirty-block "
        f"tracking is not paying off"
    )


def test_recovery_rollback_meets_reboot_gate(recovery_report):
    """PR 10 acceptance: rolling back to the last good snapshot must beat the
    from-scratch reboot it replaces by at least the checkpoint gate."""
    speedup = recovery_report["rollback_speedup_vs_scratch"]
    assert speedup is not None and speedup >= REQUIRED_RESTART_SPEEDUP, (
        f"rollback only {speedup}x over a from-scratch reboot "
        f"(floor {REQUIRED_RESTART_SPEEDUP}x)"
    )


def test_recovery_times_are_positive(recovery_report):
    for column, value in recovery_report.items():
        assert value is not None and value > 0, column


def test_no_recovery_regression_against_committed_baseline(recovery_report):
    """CI gate: the rollback speedup must not collapse by an order of
    magnitude against the committed v7 ``recovery.*`` columns."""
    if not ENFORCE:
        pytest.skip("baseline enforcement disabled (set REPRO_BENCH_ENFORCE=1)")
    baseline = _load_baseline()
    if not baseline or "recovery" not in baseline:
        pytest.skip("committed baseline predates the recovery columns "
                    "(schema < v7)")
    for column in ("delta_speedup_vs_full", "rollback_speedup_vs_scratch"):
        reference = baseline["recovery"].get(column)
        measured = recovery_report[column]
        if reference is None or measured is None:
            continue
        floor = min(reference, OOB_BASELINE_SPEEDUP_CAP) / OOB_REGRESSION_FACTOR
        assert measured >= floor, (
            f"{column}: {measured}x collapsed an order of magnitude below "
            f"baseline {reference}x (gate floor {floor}x)"
        )


def test_no_oob_flood_regression_against_committed_baseline(flood_report):
    """CI gate: the batched OOB continuation must not collapse by an order of
    magnitude against the committed flood baseline."""
    if not ENFORCE:
        pytest.skip("baseline enforcement disabled (set REPRO_BENCH_ENFORCE=1)")
    baseline = _load_baseline()
    if not baseline or "policies" not in baseline:
        pytest.skip("no committed baseline to compare against")
    for name, row in baseline["policies"].items():
        reference = row.get("oob_speedup_vs_per_byte")
        measured = flood_report.get(name, {}).get("oob_speedup_vs_per_byte")
        if reference is None or measured is None:
            continue
        floor = min(reference, OOB_BASELINE_SPEEDUP_CAP) / OOB_REGRESSION_FACTOR
        assert measured >= floor, (
            f"{name}: OOB flood speedup {measured}x collapsed an order of magnitude "
            f"below baseline {reference}x (gate floor {floor}x)"
        )
